//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach a crates.io
//! registry, so the workspace vendors the subset of proptest its property
//! tests rely on: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! [`strategy::Strategy`] implementations for primitive ranges, `any::<T>()`,
//! tuples, `prop::collection::vec`, and string strategies for the simple
//! character-class regexes the tests use (`"[a-z_]{1,24}"` style).
//!
//! Semantics match upstream where it matters for these tests: each case is
//! generated from a deterministic per-test stream, assertion failures
//! report the generated inputs, and `prop_assume!` skips the case. There
//! is no shrinking — a failing case prints its inputs instead.

pub mod strategy;

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// Vectors of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Strategy producing any value of `T` (full value range for integers).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod prelude {
    //! Everything the `proptest!` tests import.

    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Number of cases each property runs (upstream default is 256; 96 keeps
/// the engine-heavy suites fast while still exploring the space).
pub const CASES: u64 = 96;

/// Declares property tests. Each function body runs [`CASES`] times with
/// inputs drawn from its strategies; `prop_assert*` failures abort the
/// test and print the offending inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Deterministic per-test stream: hash the test name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x1000_0000_01b3);
                }
                for case in 0..$crate::CASES {
                    let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                        seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                        s
                    };
                    let __result: ::std::result::Result<(), String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = __result {
                        panic!(
                            "property {} failed at case {case}:\n{message}\ninputs:\n{__inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("{}: {:?} != {:?}", format!($($fmt)+), l, r));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}
