//! Value-generation strategies: the engine behind the [`proptest!`]
//! macro's `arg in strategy` bindings.
//!
//! [`proptest!`]: crate::proptest

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can produce a value per test case.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Full-range values, from [`any`](crate::any).
pub struct Any<T>(pub(crate) PhantomData<T>);

/// Types `any::<T>()` can generate.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length specification for [`vec`](crate::prop::collection::vec).
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { min: r.start, max_exclusive: r.end.max(r.start + 1) }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max_exclusive: n + 1 }
    }
}

/// Vectors of element-strategy draws.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// `&str` strategies are interpreted as a tiny regex subset: a sequence of
/// literal characters or `[...]` classes (with `a-z` ranges), each with an
/// optional `{min,max}` repetition — enough for patterns like
/// `"[ -~]{0,32}"` and `"[a-z_]{1,24}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let elements = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string strategy {self:?}: {e}"));
        let mut out = String::new();
        for el in &elements {
            let count = rng.gen_range(el.min..=el.max);
            for _ in 0..count {
                out.push(el.class.sample(rng));
            }
        }
        out
    }
}

struct Element {
    class: CharClass,
    min: usize,
    max: usize,
}

struct CharClass {
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn sample(&self, rng: &mut StdRng) -> char {
        let total: u32 = self.ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
        let mut x = rng.gen_range(0..total);
        for &(lo, hi) in &self.ranges {
            let span = hi as u32 - lo as u32 + 1;
            if x < span {
                return char::from_u32(lo as u32 + x).expect("valid scalar");
            }
            x -= span;
        }
        unreachable!("sample index within total")
    }
}

fn parse_pattern(pattern: &str) -> Result<Vec<Element>, String> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().ok_or("unterminated class")?;
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().ok_or("unterminated range")?;
                        if hi == ']' {
                            // Trailing '-' is a literal.
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                            break;
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                if ranges.is_empty() {
                    return Err("empty character class".into());
                }
                CharClass { ranges }
            }
            '\\' => {
                let escaped = chars.next().ok_or("dangling escape")?;
                CharClass { ranges: vec![(escaped, escaped)] }
            }
            literal => CharClass { ranges: vec![(literal, literal)] },
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().map_err(|_| "bad repetition min")?,
                    b.trim().parse().map_err(|_| "bad repetition max")?,
                ),
                None => {
                    let n = spec.trim().parse().map_err(|_| "bad repetition count")?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push(Element { class, min, max });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z_]{1,24}".generate(&mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{s:?}");
        }
        for _ in 0..200 {
            let s = "[ -~]{0,32}".generate(&mut rng);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = crate::prop::collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn tuple_and_any_strategies() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b) = (0usize..6, 0usize..6).generate(&mut rng);
        assert!(a < 6 && b < 6);
        let _: bool = crate::any::<bool>().generate(&mut rng);
        let _: i32 = crate::any::<i32>().generate(&mut rng);
    }
}
