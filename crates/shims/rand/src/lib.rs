//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace vendors the small slice of the `rand 0.8`
//! API it actually uses: the [`Rng`] extension trait (`gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::choose`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! fuzzing and property testing, deterministic per seed, but (on purpose)
//! not bit-compatible with upstream `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] like upstream's `Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a random word onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty float range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self { s: std::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// Random selection from slices (the `choose` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
