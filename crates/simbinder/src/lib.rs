//! # simbinder — simulated Binder IPC
//!
//! Stands in for Android's Binder kernel driver plus `libbinder`: typed
//! [`Parcel`] marshaling, [`Transaction`]s addressed by interface code, and
//! the [`ServiceManager`] registry that `lshal` and `service list` query.
//!
//! DroidFuzz's probing pass (paper §IV-B) discovers HAL interfaces through
//! exactly this surface: enumerate services via the service manager, fetch
//! each service's [`InterfaceInfo`], and trial-invoke methods while tracing
//! the resulting kernel activity.
//!
//! ```
//! use simbinder::{Parcel, ServiceManager, InterfaceInfo, MethodInfo, ArgKind};
//!
//! let mut sm = ServiceManager::new();
//! sm.register(InterfaceInfo {
//!     descriptor: "android.hardware.lights@2.0::ILights/default".into(),
//!     methods: vec![MethodInfo {
//!         name: "setLight".into(),
//!         code: 1,
//!         args: vec![ArgKind::Int32, ArgKind::Int32],
//!     }],
//! });
//! assert_eq!(sm.list().len(), 1);
//!
//! let mut parcel = Parcel::new();
//! parcel.write_i32(0);
//! parcel.write_i32(255);
//! let mut reader = parcel.reader();
//! assert_eq!(reader.read_i32().unwrap(), 0);
//! ```

pub mod parcel;
pub mod service_manager;
pub mod transaction;

pub use parcel::{Parcel, ParcelReader, ReadParcelError};
pub use service_manager::{ArgKind, InterfaceInfo, MethodInfo, ServiceManager};
pub use transaction::{Transaction, TransactionError, TransactionResult};
