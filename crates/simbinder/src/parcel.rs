//! Typed, tag-checked Binder parcels.
//!
//! Real parcels are raw byte streams; reading with the wrong type silently
//! misinterprets data. We keep a per-value type tag so that marshaling
//! mismatches — the bread and butter of HAL fuzzing — surface as explicit
//! [`ReadParcelError`]s rather than undefined behaviour, while the wire
//! *shape* (ordered, positional values) matches Binder.

use std::fmt;

/// Type tag of one parcel slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// UTF-16 string (stored as UTF-8 here).
    String16,
    /// Raw byte blob.
    Blob,
    /// File-descriptor token.
    FileDescriptor,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::I32 => "i32",
            ValueKind::I64 => "i64",
            ValueKind::String16 => "string16",
            ValueKind::Blob => "blob",
            ValueKind::FileDescriptor => "fd",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    I32(i32),
    I64(i64),
    String16(String),
    Blob(Vec<u8>),
    FileDescriptor(u32),
}

impl Value {
    fn kind(&self) -> ValueKind {
        match self {
            Value::I32(_) => ValueKind::I32,
            Value::I64(_) => ValueKind::I64,
            Value::String16(_) => ValueKind::String16,
            Value::Blob(_) => ValueKind::Blob,
            Value::FileDescriptor(_) => ValueKind::FileDescriptor,
        }
    }
}

/// Error reading from a parcel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadParcelError {
    /// Read past the last value.
    UnexpectedEnd,
    /// Value at the cursor has a different type.
    TypeMismatch {
        /// Type the reader asked for.
        expected: ValueKind,
        /// Type actually stored.
        found: ValueKind,
    },
}

impl fmt::Display for ReadParcelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadParcelError::UnexpectedEnd => f.write_str("unexpected end of parcel"),
            ReadParcelError::TypeMismatch { expected, found } => {
                write!(f, "parcel type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ReadParcelError {}

/// An ordered sequence of typed values exchanged over a Binder transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parcel {
    values: Vec<Value>,
}

impl Parcel {
    /// Creates an empty parcel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a 32-bit integer.
    pub fn write_i32(&mut self, v: i32) -> &mut Self {
        self.values.push(Value::I32(v));
        self
    }

    /// Appends a 64-bit integer.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.values.push(Value::I64(v));
        self
    }

    /// Appends a string.
    pub fn write_string16(&mut self, v: impl Into<String>) -> &mut Self {
        self.values.push(Value::String16(v.into()));
        self
    }

    /// Appends a byte blob.
    pub fn write_blob(&mut self, v: impl Into<Vec<u8>>) -> &mut Self {
        self.values.push(Value::Blob(v.into()));
        self
    }

    /// Appends a file-descriptor token.
    pub fn write_fd(&mut self, raw: u32) -> &mut Self {
        self.values.push(Value::FileDescriptor(raw));
        self
    }

    /// Number of values in the parcel.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the parcel holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Type tags of the values, in order (the marshaling *shape*).
    pub fn shape(&self) -> Vec<ValueKind> {
        self.values.iter().map(Value::kind).collect()
    }

    /// Approximate serialized size in bytes, as libbinder would count it.
    pub fn wire_size(&self) -> usize {
        self.values
            .iter()
            .map(|v| match v {
                Value::I32(_) | Value::FileDescriptor(_) => 4,
                Value::I64(_) => 8,
                Value::String16(s) => 4 + s.len() * 2,
                Value::Blob(b) => 4 + b.len(),
            })
            .sum()
    }

    /// Starts reading the parcel from the beginning.
    pub fn reader(&self) -> ParcelReader<'_> {
        ParcelReader { parcel: self, pos: 0 }
    }
}

/// Cursor over a [`Parcel`]'s values.
#[derive(Debug, Clone)]
pub struct ParcelReader<'a> {
    parcel: &'a Parcel,
    pos: usize,
}

impl<'a> ParcelReader<'a> {
    fn next(&mut self, expected: ValueKind) -> Result<&'a Value, ReadParcelError> {
        let value = self
            .parcel
            .values
            .get(self.pos)
            .ok_or(ReadParcelError::UnexpectedEnd)?;
        if value.kind() != expected {
            return Err(ReadParcelError::TypeMismatch { expected, found: value.kind() });
        }
        self.pos += 1;
        Ok(value)
    }

    /// Reads a 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`ReadParcelError`] on end-of-parcel or type mismatch; the cursor
    /// does not advance on error.
    pub fn read_i32(&mut self) -> Result<i32, ReadParcelError> {
        match self.next(ValueKind::I32)? {
            Value::I32(v) => Ok(*v),
            _ => unreachable!("tag checked"),
        }
    }

    /// Reads a 64-bit integer.
    ///
    /// # Errors
    ///
    /// See [`read_i32`](Self::read_i32).
    pub fn read_i64(&mut self) -> Result<i64, ReadParcelError> {
        match self.next(ValueKind::I64)? {
            Value::I64(v) => Ok(*v),
            _ => unreachable!("tag checked"),
        }
    }

    /// Reads a string.
    ///
    /// # Errors
    ///
    /// See [`read_i32`](Self::read_i32).
    pub fn read_string16(&mut self) -> Result<&'a str, ReadParcelError> {
        match self.next(ValueKind::String16)? {
            Value::String16(v) => Ok(v),
            _ => unreachable!("tag checked"),
        }
    }

    /// Reads a byte blob.
    ///
    /// # Errors
    ///
    /// See [`read_i32`](Self::read_i32).
    pub fn read_blob(&mut self) -> Result<&'a [u8], ReadParcelError> {
        match self.next(ValueKind::Blob)? {
            Value::Blob(v) => Ok(v),
            _ => unreachable!("tag checked"),
        }
    }

    /// Reads a file-descriptor token.
    ///
    /// # Errors
    ///
    /// See [`read_i32`](Self::read_i32).
    pub fn read_fd(&mut self) -> Result<u32, ReadParcelError> {
        match self.next(ValueKind::FileDescriptor)? {
            Value::FileDescriptor(v) => Ok(*v),
            _ => unreachable!("tag checked"),
        }
    }

    /// Values remaining to read.
    pub fn remaining(&self) -> usize {
        self.parcel.values.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let mut p = Parcel::new();
        p.write_i32(-7)
            .write_i64(1 << 40)
            .write_string16("camera")
            .write_blob(vec![1, 2, 3])
            .write_fd(42);
        let mut r = p.reader();
        assert_eq!(r.read_i32().unwrap(), -7);
        assert_eq!(r.read_i64().unwrap(), 1 << 40);
        assert_eq!(r.read_string16().unwrap(), "camera");
        assert_eq!(r.read_blob().unwrap(), &[1, 2, 3]);
        assert_eq!(r.read_fd().unwrap(), 42);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_i32().unwrap_err(), ReadParcelError::UnexpectedEnd);
    }

    #[test]
    fn type_mismatch_reports_both_kinds_and_does_not_advance() {
        let mut p = Parcel::new();
        p.write_string16("x");
        let mut r = p.reader();
        assert_eq!(
            r.read_i32().unwrap_err(),
            ReadParcelError::TypeMismatch {
                expected: ValueKind::I32,
                found: ValueKind::String16
            }
        );
        // Cursor did not move; the value is still readable.
        assert_eq!(r.read_string16().unwrap(), "x");
    }

    #[test]
    fn shape_reflects_write_order() {
        let mut p = Parcel::new();
        p.write_i32(1).write_blob(vec![]).write_i32(2);
        assert_eq!(
            p.shape(),
            vec![ValueKind::I32, ValueKind::Blob, ValueKind::I32]
        );
    }

    #[test]
    fn wire_size_counts_payloads() {
        let mut p = Parcel::new();
        p.write_i32(1).write_string16("ab").write_blob(vec![0; 10]);
        assert_eq!(p.wire_size(), 4 + (4 + 4) + (4 + 10));
    }
}
