//! The service registry (`servicemanager` + `lshal`).
//!
//! Services publish an [`InterfaceInfo`]: descriptor string plus the method
//! table with marshaling shapes. This mirrors what reflection through
//! `ServiceManager` gives the paper's Poke app — enough to *construct* a
//! call, but nothing about semantics, state requirements, or which kernel
//! paths a method exercises (those must be learned by probing and fuzzing).

use std::collections::BTreeMap;
use std::fmt;

/// Marshaling shape of one HAL method argument, as visible through
/// interface reflection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgKind {
    /// 32-bit integer.
    Int32,
    /// 64-bit integer.
    Int64,
    /// UTF-16 string.
    String16,
    /// Byte blob.
    Blob,
    /// File-descriptor token.
    FileDescriptor,
    /// Opaque handle returned by another method of the same service.
    Handle,
}

impl fmt::Display for ArgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgKind::Int32 => "int32",
            ArgKind::Int64 => "int64",
            ArgKind::String16 => "string16",
            ArgKind::Blob => "blob",
            ArgKind::FileDescriptor => "fd",
            ArgKind::Handle => "handle",
        };
        f.write_str(s)
    }
}

/// One method of a HAL interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodInfo {
    /// Method name as it appears in the interface dump.
    pub name: String,
    /// Transaction code.
    pub code: u32,
    /// Argument marshaling shapes.
    pub args: Vec<ArgKind>,
}

/// A registered HAL interface: descriptor plus method table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceInfo {
    /// Full descriptor, e.g.
    /// `"android.hardware.camera.provider@2.6::ICameraProvider/internal/0"`.
    pub descriptor: String,
    /// Methods in transaction-code order.
    pub methods: Vec<MethodInfo>,
}

impl InterfaceInfo {
    /// Looks up a method by transaction code.
    pub fn method(&self, code: u32) -> Option<&MethodInfo> {
        self.methods.iter().find(|m| m.code == code)
    }
}

/// The service registry.
#[derive(Debug, Clone, Default)]
pub struct ServiceManager {
    services: BTreeMap<String, InterfaceInfo>,
}

impl ServiceManager {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a service.
    pub fn register(&mut self, info: InterfaceInfo) {
        self.services.insert(info.descriptor.clone(), info);
    }

    /// Removes a service, returning its info if it was present.
    pub fn unregister(&mut self, descriptor: &str) -> Option<InterfaceInfo> {
        self.services.remove(descriptor)
    }

    /// Lists registered descriptors in sorted order (what `lshal` prints).
    pub fn list(&self) -> Vec<&str> {
        self.services.keys().map(String::as_str).collect()
    }

    /// Fetches a service's interface info (reflection).
    pub fn get(&self, descriptor: &str) -> Option<&InterfaceInfo> {
        self.services.get(descriptor)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.audio@7.0::IDevice/default".into(),
            methods: vec![
                MethodInfo { name: "openStream".into(), code: 1, args: vec![ArgKind::Int32] },
                MethodInfo { name: "closeStream".into(), code: 2, args: vec![ArgKind::Handle] },
            ],
        }
    }

    #[test]
    fn register_list_get() {
        let mut sm = ServiceManager::new();
        assert!(sm.is_empty());
        sm.register(sample());
        assert_eq!(sm.list(), vec!["android.hardware.audio@7.0::IDevice/default"]);
        let info = sm.get("android.hardware.audio@7.0::IDevice/default").unwrap();
        assert_eq!(info.method(2).unwrap().name, "closeStream");
        assert!(info.method(3).is_none());
    }

    #[test]
    fn register_replaces_and_unregister_removes() {
        let mut sm = ServiceManager::new();
        sm.register(sample());
        let mut replacement = sample();
        replacement.methods.pop();
        sm.register(replacement);
        assert_eq!(sm.len(), 1);
        assert_eq!(
            sm.get("android.hardware.audio@7.0::IDevice/default").unwrap().methods.len(),
            1
        );
        assert!(sm.unregister("android.hardware.audio@7.0::IDevice/default").is_some());
        assert!(sm.unregister("android.hardware.audio@7.0::IDevice/default").is_none());
        assert!(sm.is_empty());
    }

    #[test]
    fn list_is_sorted() {
        let mut sm = ServiceManager::new();
        for name in ["z.service/default", "a.service/default", "m.service/default"] {
            sm.register(InterfaceInfo { descriptor: name.into(), methods: vec![] });
        }
        let listed = sm.list();
        let mut sorted = listed.clone();
        sorted.sort_unstable();
        assert_eq!(listed, sorted);
    }
}
