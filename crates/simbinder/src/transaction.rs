//! Binder transactions: a method code plus a request parcel, and the
//! result statuses `libbinder` surfaces to callers.

use crate::parcel::Parcel;
use std::fmt;

/// A request to a Binder service: method `code` plus marshaled arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Method code (1-based, as AIDL/HIDL stubs number them).
    pub code: u32,
    /// Marshaled arguments.
    pub data: Parcel,
}

impl Transaction {
    /// Builds a transaction.
    pub fn new(code: u32, data: Parcel) -> Self {
        Self { code, data }
    }
}

/// Why a transaction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionError {
    /// No method with that code (`UNKNOWN_TRANSACTION`).
    UnknownCode(u32),
    /// Arguments failed to unmarshal (`BAD_VALUE`).
    BadParcel(String),
    /// The service rejected the call in its current state
    /// (`INVALID_OPERATION`).
    InvalidOperation(String),
    /// The service process crashed mid-call (`DEAD_OBJECT`) — the signal
    /// DroidFuzz's HAL executor treats as a HAL bug.
    DeadObject {
        /// Crash headline for deduplication.
        reason: String,
    },
}

impl TransactionError {
    /// Builds a `DEAD_OBJECT` status — the one binder error that means
    /// the remote *process* is gone rather than the call being bad.
    /// Spontaneous HAL service death (fault injection) and mid-call
    /// crashes both surface through this constructor.
    pub fn dead_object(reason: impl Into<String>) -> Self {
        TransactionError::DeadObject { reason: reason.into() }
    }

    /// Whether this is a `DEAD_OBJECT` status. Callers use this to
    /// separate "the service died" (re-provision / restart territory)
    /// from argument-level rejections that only fail the one call.
    pub fn is_dead_object(&self) -> bool {
        matches!(self, TransactionError::DeadObject { .. })
    }
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::UnknownCode(c) => write!(f, "unknown transaction code {c}"),
            TransactionError::BadParcel(m) => write!(f, "bad parcel: {m}"),
            TransactionError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            TransactionError::DeadObject { reason } => write!(f, "dead object: {reason}"),
        }
    }
}

impl std::error::Error for TransactionError {}

impl From<crate::parcel::ReadParcelError> for TransactionError {
    fn from(e: crate::parcel::ReadParcelError) -> Self {
        TransactionError::BadParcel(e.to_string())
    }
}

/// Result of a transaction: a reply parcel or an error status.
pub type TransactionResult = Result<Parcel, TransactionError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parcel::ReadParcelError;

    #[test]
    fn read_error_converts_to_bad_parcel() {
        let err: TransactionError = ReadParcelError::UnexpectedEnd.into();
        assert!(matches!(err, TransactionError::BadParcel(_)));
        assert!(err.to_string().contains("unexpected end"));
    }

    #[test]
    fn dead_object_carries_reason() {
        let err = TransactionError::DeadObject { reason: "Native crash in Camera HAL".into() };
        assert!(err.to_string().contains("Camera HAL"));
    }

    #[test]
    fn dead_object_classification() {
        assert!(TransactionError::dead_object("service killed").is_dead_object());
        assert!(!TransactionError::UnknownCode(7).is_dead_object());
        assert!(!TransactionError::BadParcel("x".into()).is_dead_object());
    }
}
