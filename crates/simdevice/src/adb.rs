//! ADB transport model.
//!
//! The paper's host-side fuzzing engine talks to each device over the
//! Android Debug Bridge. The dominant costs per test case are one
//! request/response round trip plus per-call execution time on the device;
//! this module provides that cost model (driving the engine's *virtual
//! clock*) and byte counters, so throughput-dependent results — coverage
//! over a 48 h window — have a physically plausible basis.

/// Microseconds in one virtual second.
pub const US_PER_SEC: u64 = 1_000_000;

/// A host↔device ADB connection with a fixed cost model.
#[derive(Debug, Clone)]
pub struct AdbLink {
    /// One-way transport latency in µs (USB ≈ 250 µs, TCP ≈ 1200 µs).
    latency_us: u64,
    /// Payload throughput in bytes/µs.
    bytes_per_us: u64,
    /// Fixed device-side cost to dispatch one call, µs.
    per_call_us: u64,
    /// Cost of a device reboot, µs.
    reboot_us: u64,
    bytes_sent: u64,
    bytes_received: u64,
    round_trips: u64,
}

impl AdbLink {
    /// A USB-attached device (the common dev-board case).
    pub fn usb() -> Self {
        Self {
            latency_us: 250,
            bytes_per_us: 30,
            per_call_us: 120,
            reboot_us: 20 * US_PER_SEC,
            bytes_sent: 0,
            bytes_received: 0,
            round_trips: 0,
        }
    }

    /// A network-attached device (kiosks on the bench LAN).
    pub fn tcp() -> Self {
        Self {
            latency_us: 1_200,
            bytes_per_us: 12,
            per_call_us: 120,
            reboot_us: 25 * US_PER_SEC,
            ..Self::usb()
        }
    }

    /// Virtual cost, in µs, of shipping a `request_bytes`-byte program,
    /// executing `calls` calls, and pulling `reply_bytes` of feedback.
    pub fn round_trip_cost(&mut self, request_bytes: usize, calls: usize, reply_bytes: usize) -> u64 {
        self.bytes_sent += request_bytes as u64;
        self.bytes_received += reply_bytes as u64;
        self.round_trips += 1;
        2 * self.latency_us
            + (request_bytes as u64 + reply_bytes as u64) / self.bytes_per_us.max(1)
            + calls as u64 * self.per_call_us
    }

    /// Virtual cost of a reboot cycle, in µs.
    pub fn reboot_cost(&self) -> u64 {
        self.reboot_us
    }

    /// Total bytes pushed to the device.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes pulled from the device.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Round trips performed.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }
}

impl Default for AdbLink {
    fn default() -> Self {
        Self::usb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usb_round_trip_accounts_latency_payload_and_calls() {
        let mut link = AdbLink::usb();
        let cost = link.round_trip_cost(300, 5, 600);
        assert_eq!(cost, 2 * 250 + 900 / 30 + 5 * 120);
        assert_eq!(link.bytes_sent(), 300);
        assert_eq!(link.bytes_received(), 600);
        assert_eq!(link.round_trips(), 1);
    }

    #[test]
    fn tcp_is_slower_than_usb() {
        let mut usb = AdbLink::usb();
        let mut tcp = AdbLink::tcp();
        assert!(tcp.round_trip_cost(100, 3, 100) > usb.round_trip_cost(100, 3, 100));
    }

    #[test]
    fn reboot_dwarfs_round_trips() {
        let mut link = AdbLink::usb();
        let trip = link.round_trip_cost(100, 3, 100);
        assert!(link.reboot_cost() > 1000 * trip);
    }
}
