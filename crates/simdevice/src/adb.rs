//! ADB transport model.
//!
//! The paper's host-side fuzzing engine talks to each device over the
//! Android Debug Bridge. The dominant costs per test case are one
//! request/response round trip plus per-call execution time on the device;
//! this module provides that cost model (driving the engine's *virtual
//! clock*) and byte counters, so throughput-dependent results — coverage
//! over a 48 h window — have a physically plausible basis.

/// Microseconds in one virtual second.
pub const US_PER_SEC: u64 = 1_000_000;

/// A host↔device ADB connection with a fixed cost model.
#[derive(Debug, Clone)]
pub struct AdbLink {
    /// One-way transport latency in µs (USB ≈ 250 µs, TCP ≈ 1200 µs).
    latency_us: u64,
    /// Payload throughput in bytes/µs.
    bytes_per_us: u64,
    /// Fixed device-side cost to dispatch one call, µs.
    per_call_us: u64,
    /// Cost of a device reboot, µs.
    reboot_us: u64,
    /// Cost of re-establishing a dropped link (`adb reconnect`), µs.
    reconnect_us: u64,
    bytes_sent: u64,
    bytes_received: u64,
    round_trips: u64,
    link_drops: u64,
    truncated_replies: u64,
}

impl AdbLink {
    /// A USB-attached device (the common dev-board case).
    pub fn usb() -> Self {
        Self {
            latency_us: 250,
            bytes_per_us: 30,
            per_call_us: 120,
            reboot_us: 20 * US_PER_SEC,
            reconnect_us: 2 * US_PER_SEC,
            bytes_sent: 0,
            bytes_received: 0,
            round_trips: 0,
            link_drops: 0,
            truncated_replies: 0,
        }
    }

    /// A network-attached device (kiosks on the bench LAN).
    pub fn tcp() -> Self {
        Self {
            latency_us: 1_200,
            bytes_per_us: 12,
            per_call_us: 120,
            reboot_us: 25 * US_PER_SEC,
            reconnect_us: 5 * US_PER_SEC,
            ..Self::usb()
        }
    }

    /// Virtual cost, in µs, of shipping a `request_bytes`-byte program,
    /// executing `calls` calls, and pulling `reply_bytes` of feedback.
    pub fn round_trip_cost(&mut self, request_bytes: usize, calls: usize, reply_bytes: usize) -> u64 {
        self.bytes_sent += request_bytes as u64;
        self.bytes_received += reply_bytes as u64;
        self.round_trips += 1;
        2 * self.latency_us
            + (request_bytes as u64 + reply_bytes as u64) / self.bytes_per_us.max(1)
            + calls as u64 * self.per_call_us
    }

    /// Virtual cost of a reboot cycle, in µs.
    pub fn reboot_cost(&self) -> u64 {
        self.reboot_us
    }

    /// Charges a dropped link: the request times out after a round trip's
    /// worth of latency, then the host pays an `adb reconnect` before it
    /// can retry. The test case never reached the device, so no payload
    /// bytes are counted. Returns the virtual cost in µs.
    pub fn link_drop_cost(&mut self) -> u64 {
        self.link_drops += 1;
        2 * self.latency_us + self.reconnect_us
    }

    /// Records a feedback reply that arrived truncated (the link died
    /// mid-pull): `lost_bytes` of the reply never made it to the host.
    pub fn note_truncated_reply(&mut self, lost_bytes: usize) {
        self.truncated_replies += 1;
        self.bytes_received = self.bytes_received.saturating_sub(lost_bytes as u64);
    }

    /// Link drops charged so far.
    pub fn link_drops(&self) -> u64 {
        self.link_drops
    }

    /// Truncated feedback replies recorded so far.
    pub fn truncated_replies(&self) -> u64 {
        self.truncated_replies
    }

    /// Total bytes pushed to the device.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes pulled from the device.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Round trips performed.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }
}

impl Default for AdbLink {
    fn default() -> Self {
        Self::usb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usb_round_trip_accounts_latency_payload_and_calls() {
        let mut link = AdbLink::usb();
        let cost = link.round_trip_cost(300, 5, 600);
        assert_eq!(cost, 2 * 250 + 900 / 30 + 5 * 120);
        assert_eq!(link.bytes_sent(), 300);
        assert_eq!(link.bytes_received(), 600);
        assert_eq!(link.round_trips(), 1);
    }

    #[test]
    fn tcp_is_slower_than_usb() {
        let mut usb = AdbLink::usb();
        let mut tcp = AdbLink::tcp();
        assert!(tcp.round_trip_cost(100, 3, 100) > usb.round_trip_cost(100, 3, 100));
    }

    #[test]
    fn reboot_dwarfs_round_trips() {
        let mut link = AdbLink::usb();
        let trip = link.round_trip_cost(100, 3, 100);
        assert!(link.reboot_cost() > 1000 * trip);
    }

    #[test]
    fn link_drop_charges_reconnect_and_counts() {
        let mut link = AdbLink::usb();
        let cost = link.link_drop_cost();
        assert_eq!(cost, 2 * 250 + 2 * US_PER_SEC);
        assert_eq!(link.link_drops(), 1);
        assert_eq!(link.bytes_sent(), 0, "a dropped request ships no payload");
        // A drop is much cheaper than a reboot but dwarfs a clean trip.
        let trip = link.round_trip_cost(100, 3, 100);
        assert!(cost > trip);
        assert!(cost < link.reboot_cost());
    }

    #[test]
    fn truncated_reply_uncounts_lost_bytes() {
        let mut link = AdbLink::usb();
        link.round_trip_cost(100, 2, 600);
        link.note_truncated_reply(200);
        assert_eq!(link.truncated_replies(), 1);
        assert_eq!(link.bytes_received(), 400);
        // Saturates rather than underflowing on a bogus loss size.
        link.note_truncated_reply(10_000);
        assert_eq!(link.bytes_received(), 0);
    }
}
