//! The ground-truth bug catalog: Table II of the paper, used by the
//! experiment harness to label discovered crashes and check completeness.

use simkernel::report::{BugKind, BugReport, Component};

/// A Table II bug number (1..=12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BugId(pub u8);

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBug {
    /// Bug number.
    pub id: BugId,
    /// Table I device id the bug lives on.
    pub device: &'static str,
    /// Crash headline (the dedup key reports carry).
    pub title: &'static str,
    /// Bug class.
    pub kind: BugKind,
    /// Paper's "Bug Type" column.
    pub bug_type: &'static str,
    /// Stack layer.
    pub component: Component,
}

/// Table II, verbatim (redacted entries use our synthetic stand-in titles).
pub const BUG_CATALOG: [KnownBug; 12] = [
    KnownBug {
        id: BugId(1),
        device: "A1",
        title: "WARNING in rt1711_i2c_probe",
        kind: BugKind::Warning,
        bug_type: "Logic Error",
        component: Component::KernelDriver,
    },
    KnownBug {
        id: BugId(2),
        device: "A1",
        title: "Native crash in Graphics HAL (redacted)",
        kind: BugKind::NativeCrash,
        bug_type: "Memory Related Bug",
        component: Component::Hal,
    },
    KnownBug {
        id: BugId(3),
        device: "A1",
        title: "BUG: looking up invalid subclass: NUM",
        kind: BugKind::Bug,
        bug_type: "Logic Error",
        component: Component::KernelSubsystem,
    },
    KnownBug {
        id: BugId(4),
        device: "A1",
        title: "WARNING in tcpc_pr_swap",
        kind: BugKind::Warning,
        bug_type: "Logic Error",
        component: Component::KernelDriver,
    },
    KnownBug {
        id: BugId(5),
        device: "A2",
        title: "Infinite Loop in driver sensorhub",
        kind: BugKind::SoftLockup,
        bug_type: "Logic Error",
        component: Component::KernelDriver,
    },
    KnownBug {
        id: BugId(6),
        device: "A2",
        title: "Native crash in Media HAL (redacted)",
        kind: BugKind::NativeCrash,
        bug_type: "Memory Related Bug",
        component: Component::Hal,
    },
    KnownBug {
        id: BugId(7),
        device: "A2",
        title: "KASAN: invalid-access in hci_read_supported_codecs",
        kind: BugKind::KasanInvalidAccess,
        bug_type: "Memory Related Bug",
        component: Component::KernelDriver,
    },
    KnownBug {
        id: BugId(8),
        device: "B",
        title: "WARNING in l2cap_send_disconn_req",
        kind: BugKind::Warning,
        bug_type: "Logic Error",
        component: Component::KernelSubsystem,
    },
    KnownBug {
        id: BugId(9),
        device: "C1",
        title: "Native crash in Camera HAL (redacted)",
        kind: BugKind::NativeCrash,
        bug_type: "Memory Related Bug",
        component: Component::Hal,
    },
    KnownBug {
        id: BugId(10),
        device: "C2",
        title: "WARNING in rate_control_rate_init",
        kind: BugKind::Warning,
        bug_type: "Logic Error",
        component: Component::KernelDriver,
    },
    KnownBug {
        id: BugId(11),
        device: "D",
        title: "KASAN: slab-use-after-free Read in bt_accept_unlink",
        kind: BugKind::KasanUseAfterFree,
        bug_type: "Memory Related Bug",
        component: Component::KernelDriver,
    },
    KnownBug {
        id: BugId(12),
        device: "E",
        title: "WARNING in v4l_querycap",
        kind: BugKind::Warning,
        bug_type: "Logic Error",
        component: Component::KernelDriver,
    },
];

/// Strips the access-direction qualifier KASAN headlines sometimes carry
/// (`slab-use-after-free Read in …` vs `slab-use-after-free in …`).
fn normalize(title: &str) -> String {
    title.replace(" Read in ", " in ").replace(" Write in ", " in ")
}

/// Matches a crash report against the catalog by headline (titles are
/// stable dedup keys; matching is tolerant of the `Read`/`Write`
/// qualifier KASAN adds).
pub fn identify(report: &BugReport) -> Option<&'static KnownBug> {
    let norm = normalize(&report.title);
    BUG_CATALOG.iter().find(|kb| normalize(kb.title) == norm)
}

/// Bugs the catalog places on `device_id`.
pub fn bugs_on(device_id: &str) -> Vec<&'static KnownBug> {
    BUG_CATALOG.iter().filter(|kb| kb.device == device_id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twelve_unique_ids() {
        let mut ids: Vec<u8> = BUG_CATALOG.iter().map(|b| b.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, (1..=12).collect::<Vec<u8>>());
    }

    #[test]
    fn component_split_matches_paper() {
        let hal = BUG_CATALOG.iter().filter(|b| b.component == Component::Hal).count();
        let kernel = BUG_CATALOG.len() - hal;
        // §V-B: "3 bugs triggered crashes in the HAL layer, whereas the
        // other 9 bugs were found in the kernel".
        assert_eq!(hal, 3);
        assert_eq!(kernel, 9);
    }

    #[test]
    fn identify_matches_kasan_title_with_read_qualifier() {
        let report = BugReport::at_site(
            BugKind::KasanUseAfterFree,
            "bt_accept_unlink",
            Component::KernelDriver,
        );
        // at_site produces "KASAN: slab-use-after-free in bt_accept_unlink"
        // while the catalog says "... Read in ..." — identify() tolerates it.
        let found = identify(&report);
        assert_eq!(found.map(|b| b.id), Some(BugId(11)));
    }

    #[test]
    fn bugs_on_groups_by_device() {
        assert_eq!(bugs_on("A1").len(), 4);
        assert_eq!(bugs_on("A2").len(), 3);
        assert_eq!(bugs_on("E").len(), 1);
        assert!(bugs_on("Z").is_empty());
    }
}
