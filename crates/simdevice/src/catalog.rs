//! The seven-device catalog of Table I, with each device's Table II bugs
//! armed in its firmware.

use crate::firmware::{Arch, BugSet, DeviceMeta, DriverKind, FirmwareSpec, ServiceKind};

fn meta(id: &str, name: &str, vendor: &str, arch: Arch, aosp: u32, kernel: &str) -> DeviceMeta {
    DeviceMeta {
        id: id.into(),
        name: name.into(),
        vendor: vendor.into(),
        arch,
        aosp,
        kernel: kernel.into(),
    }
}

fn without(all: &[DriverKind], drop: &[DriverKind]) -> Vec<DriverKind> {
    all.iter().copied().filter(|d| !drop.contains(d)).collect()
}

fn services_for(drivers: &[DriverKind]) -> Vec<ServiceKind> {
    ServiceKind::all()
        .iter()
        .copied()
        .filter(|s| s.required_drivers().iter().all(|d| drivers.contains(d)))
        .collect()
}

/// A1 — Xiaomi Phone Dev Board (bugs №1–№4).
pub fn device_a1() -> FirmwareSpec {
    let drivers = DriverKind::all().to_vec();
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("A1", "Phone Dev Board", "Xiaomi", Arch::Aarch64, 15, "6.6"),
        drivers,
        services,
        bugs: BugSet {
            tcpc_probe_warn: true,
            graphics_crash: true,
            gpu_subclass_bug: true,
            tcpc_pr_swap_warn: true,
            ..Default::default()
        },
    }
}

/// A2 — Xiaomi Tablet Dev Board (bugs №5–№7).
pub fn device_a2() -> FirmwareSpec {
    let drivers = DriverKind::all().to_vec();
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("A2", "Tablet Dev Board", "Xiaomi", Arch::Aarch64, 15, "6.6"),
        drivers,
        services,
        bugs: BugSet {
            sensor_lockup: true,
            media_crash: true,
            hci_codecs_kasan: true,
            ..Default::default()
        },
    }
}

/// B — Raspberry Pi 5 (bug №8).
pub fn device_b() -> FirmwareSpec {
    let drivers = without(DriverKind::all(), &[DriverKind::Tcpc, DriverKind::SensorHub]);
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("B", "Pi 5", "Raspberry Pi", Arch::Aarch64, 15, "6.1"),
        drivers,
        services,
        bugs: BugSet { l2cap_disconn_warn: true, ..Default::default() },
    }
}

/// C1 — Sunmi Commercial Tablet (bug №9).
pub fn device_c1() -> FirmwareSpec {
    let drivers = without(DriverKind::all(), &[DriverKind::SensorHub]);
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("C1", "Commercial Tablet", "Sunmi", Arch::Aarch64, 13, "5.15"),
        drivers,
        services,
        bugs: BugSet { camera_crash: true, ..Default::default() },
    }
}

/// C2 — Sunmi Cashier Kiosk (bug №10).
pub fn device_c2() -> FirmwareSpec {
    let drivers = without(DriverKind::all(), &[DriverKind::Vcodec, DriverKind::SensorHub]);
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("C2", "Cashier Kiosk", "Sunmi", Arch::Aarch64, 13, "5.15"),
        drivers,
        services,
        bugs: BugSet { rate_init_warn: true, ..Default::default() },
    }
}

/// D — EmbedFire LubanCat 5 (bug №11).
pub fn device_d() -> FirmwareSpec {
    let drivers = without(DriverKind::all(), &[DriverKind::Tcpc]);
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("D", "LubanCat 5", "EmbedFire", Arch::Aarch64, 13, "5.10"),
        drivers,
        services,
        bugs: BugSet { accept_unlink_uaf: true, ..Default::default() },
    }
}

/// E — AAEON UP Core Plus (bug №12).
pub fn device_e() -> FirmwareSpec {
    let drivers = without(DriverKind::all(), &[DriverKind::SensorHub]);
    let services = services_for(&drivers);
    FirmwareSpec {
        meta: meta("E", "UP Core Plus", "AAEON", Arch::Amd64, 13, "5.10"),
        drivers,
        services,
        bugs: BugSet { querycap_warn: true, ..Default::default() },
    }
}

/// All seven Table I devices, in paper order.
pub fn all_devices() -> Vec<FirmwareSpec> {
    vec![
        device_a1(),
        device_a2(),
        device_b(),
        device_c1(),
        device_c2(),
        device_d(),
        device_e(),
    ]
}

/// Looks up a device spec by its Table I id ("A1" … "E").
pub fn by_id(id: &str) -> Option<FirmwareSpec> {
    all_devices().into_iter().find(|d| d.meta.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_devices_all_valid() {
        let devices = all_devices();
        assert_eq!(devices.len(), 7);
        for spec in &devices {
            assert!(spec.validate().is_ok(), "{} invalid", spec.meta.id);
        }
    }

    #[test]
    fn every_table_ii_bug_is_armed_exactly_once_across_the_fleet() {
        let mut armed: Vec<u8> = all_devices()
            .iter()
            .flat_map(|d| d.bugs.armed_ids())
            .collect();
        armed.sort_unstable();
        assert_eq!(armed, (1..=12).collect::<Vec<u8>>());
    }

    #[test]
    fn bug_device_assignment_matches_table_ii() {
        assert_eq!(device_a1().bugs.armed_ids(), vec![1, 2, 3, 4]);
        assert_eq!(device_a2().bugs.armed_ids(), vec![5, 6, 7]);
        assert_eq!(device_b().bugs.armed_ids(), vec![8]);
        assert_eq!(device_c1().bugs.armed_ids(), vec![9]);
        assert_eq!(device_c2().bugs.armed_ids(), vec![10]);
        assert_eq!(device_d().bugs.armed_ids(), vec![11]);
        assert_eq!(device_e().bugs.armed_ids(), vec![12]);
    }

    #[test]
    fn by_id_resolves_and_rejects() {
        assert_eq!(by_id("C2").unwrap().meta.vendor, "Sunmi");
        assert!(by_id("Z9").is_none());
    }

    #[test]
    fn metadata_matches_table_i() {
        let e = device_e();
        assert_eq!(e.meta.arch, Arch::Amd64);
        assert_eq!(e.meta.aosp, 13);
        assert_eq!(device_a1().meta.kernel, "6.6");
        assert_eq!(device_c1().meta.kernel, "5.15");
    }

    #[test]
    fn services_never_lack_their_drivers() {
        for spec in all_devices() {
            for svc in &spec.services {
                for drv in svc.required_drivers() {
                    assert!(spec.drivers.contains(drv));
                }
            }
        }
    }
}
