//! A booted device: kernel + HAL runtime per a firmware spec, with the
//! reboot semantics the paper's fuzzer relies on ("reboot the target
//! devices upon encountering any bugs").

use crate::firmware::{DriverKind, FirmwareSpec, ServiceKind};
use simbinder::{ServiceManager, Transaction, TransactionResult};
use simhal::runtime::HalRuntime;
use simhal::HalService;
use simkernel::drivers::bt::{BtBugs, BtStack};
use simkernel::report::BugReport;
use simkernel::Kernel;

/// A booted simulated device.
#[derive(Debug)]
pub struct Device {
    spec: FirmwareSpec,
    kernel: Kernel,
    hal: HalRuntime,
    boots: u32,
    ioctl_only: bool,
}

fn build_kernel(spec: &FirmwareSpec) -> Kernel {
    let bt = BtStack::with_bugs(BtBugs {
        hci_codecs_kasan: spec.bugs.hci_codecs_kasan,
        l2cap_disconn_warn: spec.bugs.l2cap_disconn_warn,
        accept_unlink_uaf: spec.bugs.accept_unlink_uaf,
    });
    let mut kernel = Kernel::with_bt(bt);
    use simkernel::drivers::*;
    for &driver in &spec.drivers {
        let dev: Box<dyn simkernel::driver::CharDevice> = match driver {
            DriverKind::Tcpc => Box::new(tcpc::TcpcDevice::new(tcpc::TcpcBugs {
                probe_warn: spec.bugs.tcpc_probe_warn,
                pr_swap_warn: spec.bugs.tcpc_pr_swap_warn,
            })),
            DriverKind::SensorHub => Box::new(sensorhub::SensorHubDevice::new(
                sensorhub::SensorHubBugs { calibration_lockup: spec.bugs.sensor_lockup },
            )),
            DriverKind::Wlan => Box::new(wlan::WlanDevice::new(wlan::WlanBugs {
                rate_init_warn: spec.bugs.rate_init_warn,
            })),
            DriverKind::V4l2 => Box::new(v4l2::V4l2Device::with_bugs(
                0,
                v4l2::V4l2Bugs { querycap_warn: spec.bugs.querycap_warn },
            )),
            DriverKind::Ion => Box::new(ion::IonDevice::new()),
            DriverKind::Gpu => Box::new(gpu::GpuDevice::new(gpu::GpuBugs {
                subclass_bug: spec.bugs.gpu_subclass_bug,
            })),
            DriverKind::Drm => Box::new(drm::DrmDevice::new()),
            DriverKind::Vcodec => Box::new(vcodec::VcodecDevice::new()),
            DriverKind::Pcm => Box::new(audio::PcmDevice::new()),
            DriverKind::I2c => Box::new(i2c::I2cDevice::new(0)),
            DriverKind::Input => Box::new(input::InputDevice::new(0)),
            DriverKind::Thermal => Box::new(thermal::ThermalDevice::new()),
            DriverKind::Leds => Box::new(leds::LedsDevice::new()),
        };
        kernel.register_device(dev);
    }
    kernel
}

fn build_service(kind: ServiceKind, spec: &FirmwareSpec) -> Box<dyn HalService> {
    use simhal::services::*;
    match kind {
        ServiceKind::Graphics => Box::new(graphics::ComposerHal::new(spec.bugs.graphics_crash)),
        ServiceKind::Media => Box::new(media::MediaHal::new(spec.bugs.media_crash)),
        ServiceKind::Camera => Box::new(camera::CameraHal::new(spec.bugs.camera_crash)),
        ServiceKind::Audio => Box::new(audio::AudioHal::new()),
        ServiceKind::Sensors => Box::new(sensors::SensorsHal::new()),
        ServiceKind::Bluetooth => Box::new(bluetooth::BluetoothHal::new()),
        ServiceKind::Wifi => Box::new(wifi::WifiHal::new()),
        ServiceKind::Lights => Box::new(lights::LightsHal::new()),
        ServiceKind::Power => Box::new(power::PowerHal::new()),
        ServiceKind::Usb => Box::new(usb::UsbHal::new()),
    }
}

impl Device {
    /// Boots a device from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`FirmwareSpec::validate`] — a service
    /// without its kernel driver would brick a real image too.
    pub fn boot(spec: FirmwareSpec) -> Self {
        if let Err((svc, drv)) = spec.validate() {
            panic!("firmware spec for {}: service {svc:?} requires driver {drv:?}", spec.meta.id);
        }
        let mut kernel = build_kernel(&spec);
        let mut hal = HalRuntime::new();
        for &kind in &spec.services {
            hal.register(&mut kernel, build_service(kind, &spec));
        }
        Self { spec, kernel, hal, boots: 1, ioctl_only: false }
    }

    /// The firmware spec this device was booted from.
    pub fn spec(&self) -> &FirmwareSpec {
        &self.spec
    }

    /// Times the device has booted (1 after [`boot`](Self::boot)).
    pub fn boot_count(&self) -> u32 {
        self.boots
    }

    /// The kernel (mutable: syscalls mutate it).
    pub fn kernel(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Read-only view of the kernel.
    pub fn kernel_ref(&self) -> &Kernel {
        &self.kernel
    }

    /// The service registry (`lshal` view).
    pub fn service_manager(&self) -> &ServiceManager {
        self.hal.service_manager()
    }

    /// The HAL tag for a service descriptor.
    pub fn hal_tag(&self, descriptor: &str) -> Option<u32> {
        self.hal.tag_of(descriptor)
    }

    /// Sends a Binder transaction to a HAL service.
    pub fn transact(&mut self, descriptor: &str, txn: Transaction) -> TransactionResult {
        self.hal.transact(&mut self.kernel, descriptor, txn)
    }

    /// Drains bug reports from both the kernel log and HAL crash dumps.
    pub fn take_bug_reports(&mut self) -> Vec<BugReport> {
        let mut reports = self.kernel.take_bugs();
        reports.extend(self.hal.take_crashes());
        reports
    }

    /// Whether the device is unusable until rebooted (kernel wedged). The
    /// paper's fuzzer reboots on *any* bug; this flags the mandatory case.
    pub fn is_wedged(&self) -> bool {
        self.kernel.is_wedged()
    }

    /// Whether a HAL service is still alive.
    pub fn hal_alive(&self, descriptor: &str) -> bool {
        self.hal.is_alive(descriptor)
    }

    /// Fault injection: kills a HAL service *silently* (no crash report,
    /// unlike a crash observed mid-transaction). Subsequent calls to it
    /// fail with `DEAD_OBJECT`; a reboot revives it. Returns `false` for
    /// an unknown or already-dead service.
    pub fn kill_hal_service(&mut self, descriptor: &str) -> bool {
        self.hal.kill_service(&mut self.kernel, descriptor)
    }

    /// Fault injection: wedges the kernel without any bug report — the
    /// spontaneous device hang. All syscalls fail with `EIO` and every
    /// undelivered feedback reply is lost until [`reboot`](Self::reboot).
    pub fn force_wedge(&mut self) {
        self.kernel.force_wedge();
    }

    /// Descriptors of all registered HAL services, in sorted order
    /// (deterministic — fault victims are picked by index into this).
    pub fn hal_descriptors(&self) -> Vec<String> {
        self.service_manager().list().iter().map(|s| (*s).to_owned()).collect()
    }

    /// Ends the current Binder client session: every HAL service drops
    /// the state (and kernel resources) it held for that client. Called by
    /// the execution broker after each test case, mirroring executor
    /// process exit.
    pub fn end_hal_client(&mut self) {
        self.hal.end_client(&mut self.kernel);
    }

    /// Applies or lifts the ioctl-only syscall restriction (survives
    /// reboot; used by the DroidFuzz-D and Difuze experiment setups).
    pub fn set_ioctl_only(&mut self, on: bool) {
        self.ioctl_only = on;
        self.kernel.set_ioctl_only(on);
    }

    /// Reboots: fresh kernel state (coverage, driver state, sockets) and
    /// restarted HAL services. Host-side state (corpus, relations,
    /// accumulated coverage) is unaffected — it lives in the fuzzer.
    pub fn reboot(&mut self) {
        self.kernel = build_kernel(&self.spec);
        self.kernel.set_ioctl_only(self.ioctl_only);
        self.hal.reboot(&mut self.kernel);
        self.boots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use simbinder::Parcel;

    #[test]
    fn boot_registers_drivers_and_services() {
        let mut dev = catalog::device_a1().boot();
        assert!(!dev.kernel().device_nodes().is_empty());
        assert!(!dev.service_manager().is_empty());
        assert_eq!(dev.boot_count(), 1);
    }

    #[test]
    fn reboot_clears_kernel_state_and_revives_hal() {
        let mut dev = catalog::device_c1().boot();
        // Crash the camera HAL (bug #9 armed on C1).
        let d = "android.hardware.camera.provider@2.6::ICameraProvider/internal/0";
        dev.transact(d, Transaction::new(simhal::services::camera::OPEN_SESSION, Parcel::new()))
            .unwrap();
        let mut p = Parcel::new();
        p.write_i32(1).write_i32(640).write_i32(480);
        dev.transact(d, Transaction::new(simhal::services::camera::CONFIGURE_STREAMS, p))
            .unwrap();
        dev.transact(d, Transaction::new(simhal::services::camera::CLOSE_SESSION, Parcel::new()))
            .unwrap();
        let err = dev.transact(
            d,
            Transaction::new(simhal::services::camera::PROCESS_CAPTURE_REQUEST, Parcel::new()),
        );
        assert!(err.is_err());
        assert!(!dev.hal_alive(d));
        let reports = dev.take_bug_reports();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].title.contains("Camera HAL"));
        let cov_before = dev.kernel_ref().global_coverage().len();
        assert!(cov_before > 0);
        dev.reboot();
        assert!(dev.hal_alive(d));
        assert_eq!(dev.kernel_ref().global_coverage().len(), 0);
        assert_eq!(dev.boot_count(), 2);
    }

    #[test]
    fn kill_hal_service_is_silent_until_reboot() {
        let mut dev = catalog::device_a1().boot();
        let victim = dev.hal_descriptors().first().cloned().expect("A1 has services");
        assert!(dev.hal_alive(&victim));
        assert!(dev.kill_hal_service(&victim));
        assert!(!dev.hal_alive(&victim));
        assert!(
            dev.take_bug_reports().is_empty(),
            "spontaneous service death must not look like a fuzzer-found bug"
        );
        assert!(!dev.kill_hal_service(&victim), "already dead");
        dev.reboot();
        assert!(dev.hal_alive(&victim));
    }

    #[test]
    fn force_wedge_fails_syscalls_without_a_report() {
        let mut dev = catalog::device_a1().boot();
        assert!(!dev.is_wedged());
        dev.force_wedge();
        assert!(dev.is_wedged());
        assert!(dev.take_bug_reports().is_empty(), "no splat for a spontaneous hang");
        let pid = dev.kernel().spawn_process(simkernel::trace::Origin::Native);
        let ret = dev
            .kernel()
            .syscall(pid, simkernel::Syscall::Openat { path: "/dev/tcpc0".into() });
        assert!(matches!(ret, simkernel::SyscallRet::Err(_)));
        dev.reboot();
        assert!(!dev.is_wedged());
    }

    #[test]
    #[should_panic(expected = "requires driver")]
    fn invalid_spec_panics_at_boot() {
        let mut spec = catalog::device_a1();
        spec.drivers.clear();
        let _ = spec.boot();
    }
}
