//! Deterministic device-fault injection.
//!
//! The paper's evaluation runs against physical embedded devices that
//! drop ADB, kill HAL services, hang mid-execution, and reboot on their
//! own (§V); Chizpurfle-style work on Android vendor services shows
//! service death and device restart are the *dominant* operational
//! hazards of on-device fuzzing. This module models those hazards as a
//! seeded [`FaultPlan`]: before each supervised execution the host draws
//! at most one [`Fault`] from the plan, applies it through the device's
//! fault hooks ([`crate::Device::kill_hal_service`],
//! [`crate::Device::force_wedge`], [`crate::AdbLink::link_drop_cost`]),
//! and must then recover.
//!
//! Determinism is the point: the plan owns its *own* RNG stream (never
//! the engine's), so for a fixed `(seed, profile)` the same executions
//! see the same faults run-to-run, and the `reliable` profile is
//! behavior-identical to a fault-free build. That is what lets fleet
//! campaigns under `hostile` conditions still assert byte-identical
//! results across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// How unreliable the simulated device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultProfile {
    /// No injected faults — behavior-identical to the pre-fault build.
    #[default]
    Reliable,
    /// Occasional link drops, truncated replies, service deaths, and
    /// hangs: a healthy dev board on a busy USB hub.
    Flaky,
    /// Frequent faults plus spontaneous reboots, wedges, and (rarely) a
    /// device that vanishes for good: the worst kiosk on the bench LAN.
    Hostile,
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultProfile::Reliable => "reliable",
            FaultProfile::Flaky => "flaky",
            FaultProfile::Hostile => "hostile",
        })
    }
}

impl FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reliable" | "" => Ok(FaultProfile::Reliable),
            "flaky" => Ok(FaultProfile::Flaky),
            "hostile" => Ok(FaultProfile::Hostile),
            other => Err(format!("unknown fault profile `{other}` (reliable|flaky|hostile)")),
        }
    }
}

/// Per-execution fault probabilities (each in `[0, 1]`). At most one
/// fault fires per draw; kinds are rolled in declaration order and the
/// first hit wins, so the listed values are effective upper bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// ADB link drops before the request reaches the device.
    pub link_drop: f64,
    /// Feedback replies that arrive truncated (partial coverage lost).
    pub truncated_reply: f64,
    /// Spontaneous HAL service death (silent `DEAD_OBJECT`, no report).
    pub hal_death: f64,
    /// Execution hangs consuming a huge simulated time budget.
    pub hang: f64,
    /// Spontaneous kernel wedge: device unusable, feedback undelivered.
    pub wedge: f64,
    /// Spontaneous reboot before the execution (all fds lost).
    pub reboot: f64,
    /// The device vanishes for good (never re-provisions).
    pub vanish: f64,
    /// Probability that one re-provision attempt (reboot + liveness
    /// probe) of a *lost but recoverable* device still fails.
    pub reprovision_fail: f64,
    /// Extra virtual µs a hung execution would consume if not aborted.
    pub hang_extra_us: u64,
}

impl FaultRates {
    /// The rates behind a [`FaultProfile`].
    pub fn for_profile(profile: FaultProfile) -> Self {
        match profile {
            FaultProfile::Reliable => Self {
                link_drop: 0.0,
                truncated_reply: 0.0,
                hal_death: 0.0,
                hang: 0.0,
                wedge: 0.0,
                reboot: 0.0,
                vanish: 0.0,
                reprovision_fail: 0.0,
                hang_extra_us: 0,
            },
            FaultProfile::Flaky => Self {
                link_drop: 0.010,
                truncated_reply: 0.010,
                hal_death: 0.003,
                hang: 0.003,
                wedge: 0.0015,
                reboot: 0.0015,
                vanish: 0.0,
                reprovision_fail: 0.0,
                hang_extra_us: 120_000_000,
            },
            FaultProfile::Hostile => Self {
                link_drop: 0.040,
                truncated_reply: 0.030,
                hal_death: 0.012,
                hang: 0.010,
                wedge: 0.006,
                reboot: 0.005,
                vanish: 0.002,
                reprovision_fail: 0.25,
                hang_extra_us: 120_000_000,
            },
        }
    }
}

/// One injected fault, drawn per execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The ADB link dropped; the request never reached the device.
    LinkDrop,
    /// The execution ran but the feedback reply arrived truncated.
    TruncatedReply,
    /// A HAL service (picked by [`FaultPlan::pick_index`]) dies silently
    /// before the execution.
    HalDeath,
    /// The execution hangs, consuming `extra_us` beyond its normal cost
    /// unless a watchdog aborts it first.
    Hang {
        /// Extra virtual µs the hang would consume.
        extra_us: u64,
    },
    /// The kernel wedges spontaneously before the execution.
    Wedge,
    /// The device reboots spontaneously before the execution.
    Reboot,
    /// The device disappears permanently (re-provision always fails).
    Vanish,
}

/// A seeded, profile-driven fault schedule.
///
/// `draw` consumes a fixed number of RNG words per call regardless of
/// what fires, so the fault sequence for execution *n* depends only on
/// `(seed, rates)` — never on how earlier faults were handled.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rates: FaultRates,
    rng: StdRng,
    vanished: bool,
    drawn: u64,
}

impl FaultPlan {
    /// A plan for `profile`, seeded independently of the fuzzer's RNG.
    pub fn for_profile(profile: FaultProfile, seed: u64) -> Self {
        Self::with_rates(FaultRates::for_profile(profile), seed)
    }

    /// A plan with explicit rates (tests force specific fault mixes).
    pub fn with_rates(rates: FaultRates, seed: u64) -> Self {
        Self { rates, rng: StdRng::seed_from_u64(seed), vanished: false, drawn: 0 }
    }

    /// The rates in effect.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Draws the fault (if any) for the next execution. At most one kind
    /// fires; earlier kinds in the roll order shadow later ones.
    pub fn draw(&mut self) -> Option<Fault> {
        self.drawn += 1;
        let rolls = [
            (self.rates.link_drop, Fault::LinkDrop),
            (self.rates.truncated_reply, Fault::TruncatedReply),
            (self.rates.hal_death, Fault::HalDeath),
            (self.rates.hang, Fault::Hang { extra_us: self.rates.hang_extra_us }),
            (self.rates.wedge, Fault::Wedge),
            (self.rates.reboot, Fault::Reboot),
            (self.rates.vanish, Fault::Vanish),
        ];
        let mut hit = None;
        for (p, fault) in rolls {
            // Roll every kind even after a hit: constant RNG consumption
            // keeps the schedule independent of recovery decisions.
            let fired = p > 0.0 && self.rng.gen_bool(p);
            if fired && hit.is_none() {
                hit = Some(fault);
            }
        }
        if hit == Some(Fault::Vanish) {
            self.vanished = true;
        }
        hit
    }

    /// Whether one re-provision attempt fails. Always `true` once the
    /// device has vanished.
    pub fn reprovision_fails(&mut self) -> bool {
        if self.vanished {
            return true;
        }
        self.rates.reprovision_fail > 0.0 && self.rng.gen_bool(self.rates.reprovision_fail)
    }

    /// Whether a `Vanish` fault has fired.
    pub fn vanished(&self) -> bool {
        self.vanished
    }

    /// Executions the plan has drawn for.
    pub fn draws(&self) -> u64 {
        self.drawn
    }

    /// Deterministically picks an index in `0..n` (fault victim choice).
    pub fn pick_index(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }
}

/// Per-frame link fault probabilities (each in `[0, 1]`) for a
/// networked transport. At most one fault fires per frame; kinds are
/// rolled in declaration order and the first hit wins, mirroring
/// [`FaultRates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultRates {
    /// The frame arrives with its tail cut off (decoder sees a torn
    /// frame and must resynchronize by reconnecting).
    pub truncate: f64,
    /// A payload byte is flipped in flight (CRC mismatch on receive).
    pub corrupt: f64,
    /// The frame is delivered twice back to back.
    pub duplicate: f64,
    /// The connection drops before the frame is delivered.
    pub disconnect: f64,
    /// The frame is delayed (counted; delivery still succeeds — stalls
    /// never change what arrives, only when).
    pub stall: f64,
}

impl LinkFaultRates {
    /// The link rates behind a [`FaultProfile`].
    pub fn for_profile(profile: FaultProfile) -> Self {
        match profile {
            FaultProfile::Reliable => {
                Self { truncate: 0.0, corrupt: 0.0, duplicate: 0.0, disconnect: 0.0, stall: 0.0 }
            }
            FaultProfile::Flaky => Self {
                truncate: 0.004,
                corrupt: 0.004,
                duplicate: 0.003,
                disconnect: 0.002,
                stall: 0.010,
            },
            FaultProfile::Hostile => Self {
                truncate: 0.015,
                corrupt: 0.012,
                duplicate: 0.010,
                disconnect: 0.008,
                stall: 0.030,
            },
        }
    }
}

/// One injected link fault, drawn per transported frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Deliver only a prefix of the frame.
    TruncatedFrame,
    /// Deliver the frame with one byte flipped.
    CorruptFrame,
    /// Deliver the frame twice.
    DuplicateFrame,
    /// Drop the connection before delivering the frame.
    Disconnect,
    /// Delay the frame (delivery still succeeds).
    Stall,
}

/// A seeded, profile-driven link fault schedule — the network analogue
/// of [`FaultPlan`]. `draw` consumes a fixed number of RNG words per
/// call regardless of what fires, so the fault sequence for frame *n*
/// depends only on `(seed, rates)`, never on how earlier faults were
/// handled.
#[derive(Debug, Clone)]
pub struct LinkFaultPlan {
    rates: LinkFaultRates,
    rng: StdRng,
    drawn: u64,
}

impl LinkFaultPlan {
    /// A plan for `profile`, seeded independently of the fuzzer's RNG.
    pub fn for_profile(profile: FaultProfile, seed: u64) -> Self {
        Self::with_rates(LinkFaultRates::for_profile(profile), seed)
    }

    /// A plan with explicit rates (tests force specific fault mixes).
    pub fn with_rates(rates: LinkFaultRates, seed: u64) -> Self {
        Self { rates, rng: StdRng::seed_from_u64(seed), drawn: 0 }
    }

    /// The rates in effect.
    pub fn rates(&self) -> &LinkFaultRates {
        &self.rates
    }

    /// Draws the link fault (if any) for the next frame. At most one
    /// kind fires; earlier kinds in the roll order shadow later ones.
    pub fn draw(&mut self) -> Option<LinkFault> {
        self.drawn += 1;
        let rolls = [
            (self.rates.truncate, LinkFault::TruncatedFrame),
            (self.rates.corrupt, LinkFault::CorruptFrame),
            (self.rates.duplicate, LinkFault::DuplicateFrame),
            (self.rates.disconnect, LinkFault::Disconnect),
            (self.rates.stall, LinkFault::Stall),
        ];
        let mut hit = None;
        for (p, fault) in rolls {
            // Roll every kind even after a hit: constant RNG consumption
            // keeps the schedule independent of recovery decisions.
            let fired = p > 0.0 && self.rng.gen_bool(p);
            if fired && hit.is_none() {
                hit = Some(fault);
            }
        }
        hit
    }

    /// Frames the plan has drawn for.
    pub fn draws(&self) -> u64 {
        self.drawn
    }

    /// Deterministically picks an index in `0..n` (e.g. which byte of a
    /// frame to flip or where to truncate).
    pub fn pick_index(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_faults(profile: FaultProfile, seed: u64, draws: usize) -> usize {
        let mut plan = FaultPlan::for_profile(profile, seed);
        (0..draws).filter(|_| plan.draw().is_some()).count()
    }

    #[test]
    fn reliable_never_faults() {
        assert_eq!(count_faults(FaultProfile::Reliable, 7, 5_000), 0);
    }

    #[test]
    fn hostile_faults_more_than_flaky() {
        let flaky = count_faults(FaultProfile::Flaky, 11, 20_000);
        let hostile = count_faults(FaultProfile::Hostile, 11, 20_000);
        assert!(flaky > 0, "flaky must fault at all");
        assert!(hostile > 2 * flaky, "hostile {hostile} vs flaky {flaky}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::for_profile(FaultProfile::Hostile, 99);
        let mut b = FaultPlan::for_profile(FaultProfile::Hostile, 99);
        for _ in 0..5_000 {
            assert_eq!(a.draw(), b.draw());
        }
        assert_eq!(a.vanished(), b.vanished());
        assert_eq!(a.draws(), 5_000);
    }

    #[test]
    fn vanish_makes_reprovision_fail_forever() {
        let rates = FaultRates { vanish: 1.0, ..FaultRates::for_profile(FaultProfile::Flaky) };
        let mut plan = FaultPlan::with_rates(rates, 3);
        assert_eq!(plan.draw(), Some(Fault::Vanish));
        assert!(plan.vanished());
        for _ in 0..10 {
            assert!(plan.reprovision_fails());
        }
    }

    #[test]
    fn roll_order_shadows_later_kinds() {
        let rates = FaultRates {
            link_drop: 1.0,
            wedge: 1.0,
            ..FaultRates::for_profile(FaultProfile::Flaky)
        };
        let mut plan = FaultPlan::with_rates(rates, 5);
        assert_eq!(plan.draw(), Some(Fault::LinkDrop), "first kind in roll order wins");
    }

    #[test]
    fn profile_parsing_roundtrips() {
        for p in [FaultProfile::Reliable, FaultProfile::Flaky, FaultProfile::Hostile] {
            assert_eq!(p.to_string().parse::<FaultProfile>(), Ok(p));
        }
        assert!("chaos".parse::<FaultProfile>().is_err());
        assert_eq!("HOSTILE".parse::<FaultProfile>(), Ok(FaultProfile::Hostile));
    }

    #[test]
    fn pick_index_stays_in_bounds() {
        let mut plan = FaultPlan::for_profile(FaultProfile::Hostile, 1);
        assert_eq!(plan.pick_index(0), 0);
        assert_eq!(plan.pick_index(1), 0);
        for _ in 0..100 {
            assert!(plan.pick_index(7) < 7);
        }
    }

    #[test]
    fn reliable_link_never_faults() {
        let mut plan = LinkFaultPlan::for_profile(FaultProfile::Reliable, 7);
        assert!((0..5_000).all(|_| plan.draw().is_none()));
        assert_eq!(plan.draws(), 5_000);
    }

    #[test]
    fn same_seed_same_link_schedule() {
        let mut a = LinkFaultPlan::for_profile(FaultProfile::Hostile, 99);
        let mut b = LinkFaultPlan::for_profile(FaultProfile::Hostile, 99);
        for _ in 0..5_000 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn hostile_link_faults_more_than_flaky() {
        let count = |profile| {
            let mut plan = LinkFaultPlan::for_profile(profile, 11);
            (0..20_000).filter(|_| plan.draw().is_some()).count()
        };
        let flaky = count(FaultProfile::Flaky);
        let hostile = count(FaultProfile::Hostile);
        assert!(flaky > 0, "flaky link must fault at all");
        assert!(hostile > 2 * flaky, "hostile {hostile} vs flaky {flaky}");
    }

    #[test]
    fn link_roll_order_shadows_later_kinds() {
        let rates = LinkFaultRates {
            truncate: 1.0,
            disconnect: 1.0,
            ..LinkFaultRates::for_profile(FaultProfile::Flaky)
        };
        let mut plan = LinkFaultPlan::with_rates(rates, 5);
        assert_eq!(plan.draw(), Some(LinkFault::TruncatedFrame));
    }
}
