//! Firmware specifications: which drivers, HAL services, and injected bugs
//! a device image ships with.

use std::fmt;

/// CPU architecture (Table I's `Arch.` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// 64-bit Arm.
    Aarch64,
    /// 64-bit x86.
    Amd64,
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arch::Aarch64 => f.write_str("aarch64"),
            Arch::Amd64 => f.write_str("amd64"),
        }
    }
}

/// Device identity metadata (Table I row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceMeta {
    /// Short id used throughout the paper ("A1", "B", …).
    pub id: String,
    /// Product name.
    pub name: String,
    /// Hardware vendor.
    pub vendor: String,
    /// CPU architecture.
    pub arch: Arch,
    /// AOSP major version.
    pub aosp: u32,
    /// Kernel version string.
    pub kernel: String,
}

/// A kernel driver a firmware image can ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverKind {
    /// USB Type-C port controller.
    Tcpc,
    /// Vendor sensor hub.
    SensorHub,
    /// mac80211-style wireless.
    Wlan,
    /// V4L2 camera.
    V4l2,
    /// ION allocator.
    Ion,
    /// GPU.
    Gpu,
    /// DRM display.
    Drm,
    /// Video codec.
    Vcodec,
    /// PCM audio.
    Pcm,
    /// I²C adapter.
    I2c,
    /// evdev input.
    Input,
    /// Thermal zones.
    Thermal,
    /// LED bank.
    Leds,
}

impl DriverKind {
    /// Every driver kind, for building full-featured firmwares.
    pub fn all() -> &'static [DriverKind] {
        use DriverKind::*;
        &[Tcpc, SensorHub, Wlan, V4l2, Ion, Gpu, Drm, Vcodec, Pcm, I2c, Input, Thermal, Leds]
    }
}

/// A HAL service a firmware image can ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Graphics composer.
    Graphics,
    /// Media codec.
    Media,
    /// Camera provider.
    Camera,
    /// Audio devices factory.
    Audio,
    /// Sensors.
    Sensors,
    /// Bluetooth HCI.
    Bluetooth,
    /// Wi-Fi.
    Wifi,
    /// Lights.
    Lights,
    /// Power/thermal.
    Power,
    /// USB Type-C.
    Usb,
}

impl ServiceKind {
    /// Every service kind.
    pub fn all() -> &'static [ServiceKind] {
        use ServiceKind::*;
        &[Graphics, Media, Camera, Audio, Sensors, Bluetooth, Wifi, Lights, Power, Usb]
    }

    /// The kernel drivers this service needs to function.
    pub fn required_drivers(self) -> &'static [DriverKind] {
        use DriverKind::*;
        match self {
            ServiceKind::Graphics => &[Drm, Ion, Gpu],
            ServiceKind::Media => &[Vcodec],
            ServiceKind::Camera => &[V4l2],
            ServiceKind::Audio => &[Pcm],
            ServiceKind::Sensors => &[SensorHub],
            ServiceKind::Bluetooth => &[],
            ServiceKind::Wifi => &[Wlan],
            ServiceKind::Lights => &[Leds],
            ServiceKind::Power => &[Thermal],
            ServiceKind::Usb => &[Tcpc],
        }
    }
}

/// Which of Table II's twelve injected bugs this firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(clippy::struct_excessive_bools)]
pub struct BugSet {
    /// №1 — `WARNING in rt1711_i2c_probe` (tcpc).
    pub tcpc_probe_warn: bool,
    /// №2 — Graphics HAL native crash.
    pub graphics_crash: bool,
    /// №3 — lockdep invalid-subclass BUG (gpu import chain).
    pub gpu_subclass_bug: bool,
    /// №4 — `WARNING in tcpc_pr_swap`.
    pub tcpc_pr_swap_warn: bool,
    /// №5 — sensor-hub calibration soft lockup.
    pub sensor_lockup: bool,
    /// №6 — Media HAL native crash.
    pub media_crash: bool,
    /// №7 — `KASAN: invalid-access in hci_read_supported_codecs`.
    pub hci_codecs_kasan: bool,
    /// №8 — `WARNING in l2cap_send_disconn_req`.
    pub l2cap_disconn_warn: bool,
    /// №9 — Camera HAL native crash.
    pub camera_crash: bool,
    /// №10 — `WARNING in rate_control_rate_init`.
    pub rate_init_warn: bool,
    /// №11 — `KASAN: slab-use-after-free in bt_accept_unlink`.
    pub accept_unlink_uaf: bool,
    /// №12 — `WARNING in v4l_querycap`.
    pub querycap_warn: bool,
}

impl BugSet {
    /// Table II bug numbers this set arms, ascending.
    pub fn armed_ids(&self) -> Vec<u8> {
        let flags = [
            self.tcpc_probe_warn,
            self.graphics_crash,
            self.gpu_subclass_bug,
            self.tcpc_pr_swap_warn,
            self.sensor_lockup,
            self.media_crash,
            self.hci_codecs_kasan,
            self.l2cap_disconn_warn,
            self.camera_crash,
            self.rate_init_warn,
            self.accept_unlink_uaf,
            self.querycap_warn,
        ];
        flags
            .iter()
            .enumerate()
            .filter_map(|(i, &armed)| armed.then_some(i as u8 + 1))
            .collect()
    }
}

/// A complete firmware image description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareSpec {
    /// Device identity.
    pub meta: DeviceMeta,
    /// Kernel drivers in the image.
    pub drivers: Vec<DriverKind>,
    /// HAL services in the image.
    pub services: Vec<ServiceKind>,
    /// Injected bugs armed.
    pub bugs: BugSet,
}

impl FirmwareSpec {
    /// Boots a device from this spec. Convenience for
    /// [`crate::Device::boot`].
    pub fn boot(self) -> crate::Device {
        crate::Device::boot(self)
    }

    /// Validates that every service's required drivers are present.
    ///
    /// # Errors
    ///
    /// Returns the first `(service, missing driver)` pair found.
    pub fn validate(&self) -> Result<(), (ServiceKind, DriverKind)> {
        for &svc in &self.services {
            for &drv in svc.required_drivers() {
                if !self.drivers.contains(&drv) {
                    return Err((svc, drv));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_ids_map_to_table_ii_numbers() {
        let set = BugSet { tcpc_probe_warn: true, querycap_warn: true, ..Default::default() };
        assert_eq!(set.armed_ids(), vec![1, 12]);
        assert!(BugSet::default().armed_ids().is_empty());
    }

    #[test]
    fn validate_catches_missing_driver() {
        let spec = FirmwareSpec {
            meta: DeviceMeta {
                id: "X".into(),
                name: "x".into(),
                vendor: "v".into(),
                arch: Arch::Aarch64,
                aosp: 15,
                kernel: "6.6".into(),
            },
            drivers: vec![DriverKind::Leds],
            services: vec![ServiceKind::Camera],
            bugs: BugSet::default(),
        };
        assert_eq!(spec.validate(), Err((ServiceKind::Camera, DriverKind::V4l2)));
    }

    #[test]
    fn all_lists_are_exhaustive_and_unique() {
        assert_eq!(DriverKind::all().len(), 13);
        assert_eq!(ServiceKind::all().len(), 10);
        let mut drivers = DriverKind::all().to_vec();
        drivers.dedup();
        assert_eq!(drivers.len(), 13);
    }
}
