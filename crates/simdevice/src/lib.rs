//! # simdevice — simulated embedded Android devices
//!
//! Assembles [`simkernel`] and [`simhal`] into complete device models per a
//! [`firmware::FirmwareSpec`], and ships the seven-device catalog of the
//! DroidFuzz paper's Table I ([`catalog`]), each with its Table II bugs
//! armed ([`bugs`]). The [`adb`] module models the Android Debug Bridge
//! transport costs the host-side fuzzer pays per test case. The
//! [`faults`] module adds a seeded device-fault model (link drops, HAL
//! death, hangs, spontaneous reboots) for supervised-execution testing.
//!
//! ```
//! use simdevice::catalog;
//!
//! let mut device = catalog::device_a1().boot();
//! assert!(device.kernel().device_nodes().iter().any(|n| n == "/dev/tcpc0"));
//! assert_eq!(device.spec().meta.id, "A1");
//! ```

pub mod adb;
pub mod bugs;
pub mod catalog;
pub mod device;
pub mod faults;
pub mod firmware;

pub use adb::AdbLink;
pub use bugs::{BugId, KnownBug, BUG_CATALOG};
pub use device::Device;
pub use faults::{Fault, FaultPlan, FaultProfile, FaultRates, LinkFault, LinkFaultPlan, LinkFaultRates};
pub use firmware::{Arch, BugSet, DeviceMeta, DriverKind, FirmwareSpec, ServiceKind};
