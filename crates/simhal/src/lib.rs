//! # simhal — simulated Android HAL layer
//!
//! Stands in for the proprietary, closed-source vendor HAL blobs the
//! DroidFuzz paper targets. Each [`service::HalService`] is a stateful
//! state machine reachable only through Binder transactions; internally it
//! translates high-level methods into *semantically coherent* syscall
//! sequences against the [`simkernel`] drivers — the property that makes
//! joint HAL/kernel fuzzing cover more kernel driver state than raw
//! syscall fuzzing (paper §V-C).
//!
//! Crucially, nothing in this crate's service internals is visible to the
//! fuzzer: the fuzzer only sees [`simbinder::InterfaceInfo`] reflection
//! data and whatever its eBPF-style trace sessions observe in the kernel,
//! matching the paper's threat model for closed-source HALs.
//!
//! Five Table II bugs live here or are reached through here:
//! HAL-layer native crashes #2 (Graphics), #6 (Media), #9 (Camera), and
//! kernel bugs #1/#4/#5/#7/#10 whose natural trigger path runs through
//! the corresponding HAL service.
//!
//! ```
//! use simhal::runtime::HalRuntime;
//! use simhal::services::lights::LightsHal;
//! use simbinder::{Parcel, Transaction};
//! use simkernel::Kernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::new();
//! kernel.register_device(Box::new(simkernel::drivers::leds::LedsDevice::new()));
//! let mut hal = HalRuntime::new();
//! hal.register(&mut kernel, Box::new(LightsHal::new()));
//!
//! let mut args = Parcel::new();
//! args.write_i32(0).write_i32(200);
//! let descriptor = hal.service_manager().list()[0].to_owned();
//! hal.transact(&mut kernel, &descriptor, Transaction::new(1, args))?;
//! # Ok(())
//! # }
//! ```

pub mod runtime;
pub mod service;
pub mod services;

pub use runtime::HalRuntime;
pub use service::{HalService, KernelHandle};
