//! The HAL runtime: hosts service processes, routes transactions, and
//! turns service crashes into bug reports.

use crate::service::{HalService, KernelHandle};
use simbinder::{ServiceManager, Transaction, TransactionError, TransactionResult};
use simkernel::report::{BugKind, BugReport, Component};
use simkernel::trace::Origin;
use simkernel::Kernel;

struct ServiceSlot {
    tag: u32,
    pid: simkernel::Pid,
    descriptor: String,
    svc: Box<dyn HalService>,
    alive: bool,
}

impl std::fmt::Debug for ServiceSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSlot")
            .field("tag", &self.tag)
            .field("descriptor", &self.descriptor)
            .field("alive", &self.alive)
            .finish()
    }
}

/// Hosts HAL services, each in its own (simulated) process, and exposes
/// them through a [`ServiceManager`].
#[derive(Debug, Default)]
pub struct HalRuntime {
    slots: Vec<ServiceSlot>,
    sm: ServiceManager,
    crashes: Vec<BugReport>,
}

impl HalRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service: spawns its process in `kernel`, publishes its
    /// interface, and returns the HAL tag used in kernel trace events.
    pub fn register(&mut self, kernel: &mut Kernel, svc: Box<dyn HalService>) -> u32 {
        let tag = self.slots.len() as u32 + 1;
        let pid = kernel.spawn_process(Origin::Hal(tag));
        let info = svc.info();
        let descriptor = info.descriptor.clone();
        self.sm.register(info);
        self.slots.push(ServiceSlot { tag, pid, descriptor, svc, alive: true });
        tag
    }

    /// The registry the Poke app / prober enumerates.
    pub fn service_manager(&self) -> &ServiceManager {
        &self.sm
    }

    /// HAL tag of a service, if registered.
    pub fn tag_of(&self, descriptor: &str) -> Option<u32> {
        self.slots.iter().find(|s| s.descriptor == descriptor).map(|s| s.tag)
    }

    /// Whether the service process is alive (not crashed since last reboot).
    pub fn is_alive(&self, descriptor: &str) -> bool {
        self.slots
            .iter()
            .find(|s| s.descriptor == descriptor)
            .map(|s| s.alive)
            == Some(true)
    }

    /// Routes a transaction to a service.
    ///
    /// # Errors
    ///
    /// `DeadObject` when the service is unknown or has crashed; otherwise
    /// whatever the service returns. A first crash is recorded as a
    /// [`BugReport`] with `NativeCrash` kind, retrievable through
    /// [`take_crashes`](Self::take_crashes).
    pub fn transact(
        &mut self,
        kernel: &mut Kernel,
        descriptor: &str,
        txn: Transaction,
    ) -> TransactionResult {
        let Some(slot) = self.slots.iter_mut().find(|s| s.descriptor == descriptor) else {
            return Err(TransactionError::DeadObject { reason: "no such service".into() });
        };
        if !slot.alive {
            return Err(TransactionError::DeadObject { reason: "service has died".into() });
        }
        let mut handle = KernelHandle::new(kernel, slot.pid);
        let result = slot.svc.on_transact(&mut handle, &txn);
        if let Err(TransactionError::DeadObject { reason }) = &result {
            slot.alive = false;
            self.crashes.push(BugReport {
                kind: BugKind::NativeCrash,
                title: reason.clone(),
                component: Component::Hal,
                log: format!(
                    "*** *** *** *** ***\npid: {}, name: {descriptor}\nsignal 11 (SIGSEGV)\n{reason}",
                    slot.pid.0
                ),
            });
        }
        result
    }

    /// Kills a service process *without* recording a crash report — the
    /// spontaneous-death fault: `lmkd` reaping, a vendor watchdog restart,
    /// or the service silently aborting between transactions. Subsequent
    /// transactions fail with `DEAD_OBJECT`, but — unlike a crash observed
    /// mid-call — no bug report ever appears, which is exactly what lets a
    /// host-side supervisor distinguish "device lost" from "bug found".
    /// Returns `false` for an unknown or already-dead service.
    pub fn kill_service(&mut self, kernel: &mut Kernel, descriptor: &str) -> bool {
        let Some(slot) = self.slots.iter_mut().find(|s| s.descriptor == descriptor) else {
            return false;
        };
        if !slot.alive {
            return false;
        }
        slot.alive = false;
        // The dying process drops its kernel resources (fds, sessions),
        // exactly as the binder driver's death cleanup would.
        let _ = kernel.exit_process(slot.pid);
        true
    }

    /// Drains recorded HAL crash reports.
    pub fn take_crashes(&mut self) -> Vec<BugReport> {
        std::mem::take(&mut self.crashes)
    }

    /// Drops per-client state in every (live) service: the fuzzer's
    /// executor process is one Binder client, and when it exits the
    /// services release that client's sessions, layers, streams and file
    /// descriptors — exactly as `binderDied` cleanup does. Implemented by
    /// tearing down the service's kernel process (running driver
    /// `release` handlers) and respawning it with fresh in-memory state.
    pub fn end_client(&mut self, kernel: &mut Kernel) {
        for slot in &mut self.slots {
            if !slot.alive {
                continue;
            }
            let _ = kernel.exit_process(slot.pid);
            slot.svc.reset();
            slot.pid = kernel.spawn_process(Origin::Hal(slot.tag));
        }
    }

    /// Restarts all services with fresh state and fresh processes in the
    /// (typically also fresh) `kernel` — the device-reboot path.
    pub fn reboot(&mut self, kernel: &mut Kernel) {
        for slot in &mut self.slots {
            slot.svc.reset();
            slot.pid = kernel.spawn_process(Origin::Hal(slot.tag));
            slot.alive = true;
        }
        self.crashes.clear();
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbinder::{InterfaceInfo, MethodInfo, Parcel};

    /// Service that crashes on method 2 and echoes on method 1.
    struct Crashy {
        calls: u32,
    }

    impl HalService for Crashy {
        fn info(&self) -> InterfaceInfo {
            InterfaceInfo {
                descriptor: "test.crashy@1.0::ICrashy/default".into(),
                methods: vec![
                    MethodInfo { name: "echo".into(), code: 1, args: vec![] },
                    MethodInfo { name: "boom".into(), code: 2, args: vec![] },
                ],
            }
        }

        fn on_transact(
            &mut self,
            _sys: &mut KernelHandle<'_>,
            txn: &Transaction,
        ) -> TransactionResult {
            self.calls += 1;
            match txn.code {
                1 => Ok(Parcel::new()),
                2 => Err(crate::service::native_crash("Native crash in Crashy HAL")),
                c => Err(TransactionError::UnknownCode(c)),
            }
        }

        fn reset(&mut self) {
            self.calls = 0;
        }
    }

    #[test]
    fn crash_marks_service_dead_and_records_report() {
        let mut kernel = Kernel::new();
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(Crashy { calls: 0 }));
        let d = "test.crashy@1.0::ICrashy/default";
        assert!(rt.transact(&mut kernel, d, Transaction::new(1, Parcel::new())).is_ok());
        assert!(rt.is_alive(d));
        let err = rt.transact(&mut kernel, d, Transaction::new(2, Parcel::new()));
        assert!(matches!(err, Err(TransactionError::DeadObject { .. })));
        assert!(!rt.is_alive(d));
        // Subsequent calls fail without re-recording a crash.
        let err2 = rt.transact(&mut kernel, d, Transaction::new(1, Parcel::new()));
        assert!(matches!(err2, Err(TransactionError::DeadObject { .. })));
        let crashes = rt.take_crashes();
        assert_eq!(crashes.len(), 1);
        assert_eq!(crashes[0].kind, BugKind::NativeCrash);
        assert_eq!(crashes[0].component, Component::Hal);
        assert_eq!(crashes[0].title, "Native crash in Crashy HAL");
    }

    #[test]
    fn reboot_revives_services() {
        let mut kernel = Kernel::new();
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(Crashy { calls: 0 }));
        let d = "test.crashy@1.0::ICrashy/default";
        rt.transact(&mut kernel, d, Transaction::new(2, Parcel::new())).unwrap_err();
        assert!(!rt.is_alive(d));
        rt.reboot(&mut kernel);
        assert!(rt.is_alive(d));
        assert!(rt.transact(&mut kernel, d, Transaction::new(1, Parcel::new())).is_ok());
    }

    #[test]
    fn kill_service_dies_silently_without_a_crash_report() {
        let mut kernel = Kernel::new();
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(Crashy { calls: 0 }));
        let d = "test.crashy@1.0::ICrashy/default";
        assert!(rt.kill_service(&mut kernel, d));
        assert!(!rt.is_alive(d));
        let err = rt.transact(&mut kernel, d, Transaction::new(1, Parcel::new()));
        assert!(matches!(err, Err(TransactionError::DeadObject { .. })));
        assert!(rt.take_crashes().is_empty(), "spontaneous death leaves no report");
        // Idempotent: a dead or unknown service cannot be killed again.
        assert!(!rt.kill_service(&mut kernel, d));
        assert!(!rt.kill_service(&mut kernel, "nope"));
        // A reboot revives it, as with any other death.
        rt.reboot(&mut kernel);
        assert!(rt.is_alive(d));
    }

    #[test]
    fn unknown_service_is_dead_object() {
        let mut kernel = Kernel::new();
        let mut rt = HalRuntime::new();
        let err = rt.transact(&mut kernel, "nope", Transaction::new(1, Parcel::new()));
        assert!(matches!(err, Err(TransactionError::DeadObject { .. })));
    }

    #[test]
    fn tags_are_unique_and_resolvable() {
        let mut kernel = Kernel::new();
        let mut rt = HalRuntime::new();
        let t1 = rt.register(&mut kernel, Box::new(Crashy { calls: 0 }));
        assert_eq!(rt.tag_of("test.crashy@1.0::ICrashy/default"), Some(t1));
        assert_eq!(rt.tag_of("missing"), None);
        assert_eq!(rt.len(), 1);
    }
}
