//! The HAL service trait and the kernel handle services issue syscalls
//! through.

use simbinder::{InterfaceInfo, Transaction, TransactionResult};
use simkernel::{Kernel, Syscall, SyscallRet};

/// Handle a HAL service uses to reach the kernel. All syscalls go through
/// the service's own process, so kernel trace sessions attribute them to
/// `Origin::Hal(tag)` — exactly what DroidFuzz's cross-boundary feedback
/// (§IV-D) observes.
#[derive(Debug)]
pub struct KernelHandle<'a> {
    kernel: &'a mut Kernel,
    pid: simkernel::Pid,
}

impl<'a> KernelHandle<'a> {
    /// Builds a handle for the service process `pid`.
    pub fn new(kernel: &'a mut Kernel, pid: simkernel::Pid) -> Self {
        Self { kernel, pid }
    }

    /// Issues a syscall as the service process.
    pub fn sys(&mut self, call: Syscall) -> SyscallRet {
        self.kernel.syscall(self.pid, call)
    }

    /// The service's process id.
    pub fn pid(&self) -> simkernel::Pid {
        self.pid
    }
}

/// A vendor HAL service.
///
/// Implementations are *opaque to the fuzzer*: only [`info`](Self::info)
/// (Binder reflection) and kernel-side traces of what
/// [`on_transact`](Self::on_transact) does are observable.
///
/// A service signals its own crash (SIGSEGV/SIGABRT in the real world) by
/// returning [`simbinder::TransactionError::DeadObject`]; the runtime then
/// marks the process dead until the device reboots.
pub trait HalService: Send {
    /// Binder reflection data: descriptor and method table.
    fn info(&self) -> InterfaceInfo;

    /// Handles one transaction, possibly issuing syscalls through `sys`.
    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult;

    /// Resets all in-memory state (called on device reboot, when the
    /// service process is restarted by init).
    fn reset(&mut self);
}

/// Convenience: signal a native crash with a stable dedup headline.
pub fn native_crash(reason: impl Into<String>) -> simbinder::TransactionError {
    simbinder::TransactionError::DeadObject { reason: reason.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::trace::Origin;

    #[test]
    fn kernel_handle_attributes_syscalls_to_hal_origin() {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::thermal::ThermalDevice::new()));
        let pid = kernel.spawn_process(Origin::Hal(7));
        let tid = kernel.attach_trace(simkernel::trace::TraceFilter::HalTag(7));
        {
            let mut handle = KernelHandle::new(&mut kernel, pid);
            assert_eq!(handle.pid(), pid);
            handle.sys(Syscall::Openat { path: "/dev/thermal".into() });
        }
        let events = kernel.trace_drain(tid);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].origin, Origin::Hal(7));
    }

    #[test]
    fn native_crash_builds_dead_object() {
        let err = native_crash("Native crash in Media HAL (redacted)");
        assert!(matches!(
            err,
            simbinder::TransactionError::DeadObject { .. }
        ));
    }
}
