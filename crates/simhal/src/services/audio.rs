//! Audio HAL (`android.hardware.audio@7.1::IDevicesFactory/default`).

use crate::service::{HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::audio as pcm;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: open an output stream (`rate`, `channels`).
pub const OPEN_OUTPUT_STREAM: u32 = 1;
/// Method code: write PCM frames.
pub const WRITE_FRAMES: u32 = 2;
/// Method code: pause playback.
pub const PAUSE: u32 = 3;
/// Method code: resume playback.
pub const RESUME: u32 = 4;
/// Method code: enter standby (drain).
pub const STANDBY: u32 = 5;
/// Method code: close the stream.
pub const CLOSE_STREAM: u32 = 6;

/// The audio HAL service.
#[derive(Debug, Default)]
pub struct AudioHal {
    fd: Option<Fd>,
    stream_open: bool,
}

impl AudioHal {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }

    fn stream(&self) -> Result<Fd, TransactionError> {
        if !self.stream_open {
            return Err(TransactionError::InvalidOperation("no stream".into()));
        }
        self.fd
            .ok_or_else(|| TransactionError::InvalidOperation("no stream".into()))
    }
}

impl HalService for AudioHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.audio@7.1::IDevicesFactory/default".into(),
            methods: vec![
                MethodInfo {
                    name: "openOutputStream".into(),
                    code: OPEN_OUTPUT_STREAM,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo { name: "writeFrames".into(), code: WRITE_FRAMES, args: vec![ArgKind::Blob] },
                MethodInfo { name: "pause".into(), code: PAUSE, args: vec![] },
                MethodInfo { name: "resume".into(), code: RESUME, args: vec![] },
                MethodInfo { name: "standby".into(), code: STANDBY, args: vec![] },
                MethodInfo { name: "closeStream".into(), code: CLOSE_STREAM, args: vec![] },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        match txn.code {
            OPEN_OUTPUT_STREAM => {
                let rate = r.read_i32()?;
                let channels = r.read_i32()?;
                let rate = if pcm::RATES.contains(&(rate as u32)) { rate as u32 } else { 48000 };
                let channels = channels.clamp(1, 8) as u32;
                let fd = ensure_open(sys, &mut self.fd, "/dev/snd_pcm0")?;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: pcm::PCM_HW_PARAMS,
                        arg: words(&[rate, channels, 2]),
                    }),
                    "hw params",
                )?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: pcm::PCM_PREPARE, arg: vec![] }),
                    "prepare",
                )?;
                self.stream_open = true;
                Ok(Parcel::new())
            }
            WRITE_FRAMES => {
                let blob = r.read_blob()?;
                let fd = self.stream()?;
                let n = expect_ok(
                    sys.sys(Syscall::Write { fd, data: blob.to_vec() }),
                    "write",
                )?;
                let mut reply = Parcel::new();
                reply.write_i32(n as i32);
                Ok(reply)
            }
            PAUSE => {
                let fd = self.stream()?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: pcm::PCM_PAUSE, arg: words(&[1]) }),
                    "pause",
                )?;
                Ok(Parcel::new())
            }
            RESUME => {
                let fd = self.stream()?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: pcm::PCM_PAUSE, arg: words(&[0]) }),
                    "resume",
                )?;
                Ok(Parcel::new())
            }
            STANDBY => {
                let fd = self.stream()?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: pcm::PCM_DRAIN, arg: vec![] }),
                    "drain",
                )?;
                Ok(Parcel::new())
            }
            CLOSE_STREAM => {
                let fd = self.stream()?;
                let _ = sys.sys(Syscall::Close { fd });
                self.fd = None;
                self.stream_open = false;
                Ok(Parcel::new())
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.audio@7.1::IDevicesFactory/default";

    fn setup() -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::audio::PcmDevice::new()));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(AudioHal::new()));
        (kernel, rt)
    }

    #[test]
    fn playback_through_hal() {
        let (mut k, mut rt) = setup();
        let mut p = Parcel::new();
        p.write_i32(48000).write_i32(2);
        rt.transact(&mut k, DESC, Transaction::new(OPEN_OUTPUT_STREAM, p)).unwrap();
        let mut p = Parcel::new();
        p.write_blob(vec![0u8; 256]);
        let reply = rt.transact(&mut k, DESC, Transaction::new(WRITE_FRAMES, p)).unwrap();
        assert_eq!(reply.reader().read_i32().unwrap(), 256);
        rt.transact(&mut k, DESC, Transaction::new(PAUSE, Parcel::new())).unwrap();
        rt.transact(&mut k, DESC, Transaction::new(RESUME, Parcel::new())).unwrap();
        rt.transact(&mut k, DESC, Transaction::new(STANDBY, Parcel::new())).unwrap();
        rt.transact(&mut k, DESC, Transaction::new(CLOSE_STREAM, Parcel::new())).unwrap();
    }

    #[test]
    fn write_without_stream_is_invalid() {
        let (mut k, mut rt) = setup();
        let mut p = Parcel::new();
        p.write_blob(vec![0u8; 4]);
        let err = rt.transact(&mut k, DESC, Transaction::new(WRITE_FRAMES, p)).unwrap_err();
        assert!(matches!(err, TransactionError::InvalidOperation(_)));
    }
}
