//! Bluetooth HAL (`android.hardware.bluetooth@1.1::IBluetoothHci/default`).
//!
//! No HAL-layer crash lives here, but this service is the natural trigger
//! path for the kernel Bluetooth bugs (#7 HCI codecs KASAN, #8 L2CAP
//! disconnect WARNING, #11 accept-unlink UAF): its methods perform the
//! multi-step socket/ioctl sequences those bugs gate on.

use crate::service::{HalService, KernelHandle};
use crate::services::{expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::bt;
use simkernel::fd::Fd;
use simkernel::syscall::{af, btproto};
use simkernel::Syscall;

/// Method code: power the controller up (`mode` 0 = full, 1 = staged).
pub const ENABLE: u32 = 1;
/// Method code: finish a staged init.
pub const COMPLETE_SETUP: u32 = 2;
/// Method code: read the controller's supported codecs.
pub const READ_SUPPORTED_CODECS: u32 = 3;
/// Method code: run device discovery for `duration` slots.
pub const START_DISCOVERY: u32 = 4;
/// Method code: open an L2CAP channel (`type`, `addr`).
pub const CONNECT_CHANNEL: u32 = 5;
/// Method code: disconnect the current channel.
pub const DISCONNECT_CHANNEL: u32 = 6;
/// Method code: start an L2CAP server on a PSM.
pub const START_SERVER: u32 = 7;
/// Method code: accept one client on the server.
pub const ACCEPT_CLIENT: u32 = 8;
/// Method code: close the last accepted client socket.
pub const CLOSE_CLIENT: u32 = 9;
/// Method code: close the server socket.
pub const CLOSE_SERVER: u32 = 10;
/// Method code: power the controller down.
pub const DISABLE: u32 = 11;
/// Method code: send data on the current channel.
pub const SEND_DATA: u32 = 12;

/// The Bluetooth HAL service.
#[derive(Debug, Default)]
pub struct BluetoothHal {
    hci_fd: Option<Fd>,
    channel_fd: Option<Fd>,
    server_fd: Option<Fd>,
    client_fd: Option<Fd>,
}

impl BluetoothHal {
    /// Creates the service with the controller down.
    pub fn new() -> Self {
        Self::default()
    }

    fn hci(&self) -> Result<Fd, TransactionError> {
        self.hci_fd
            .ok_or_else(|| TransactionError::InvalidOperation("controller not enabled".into()))
    }
}

impl HalService for BluetoothHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.bluetooth@1.1::IBluetoothHci/default".into(),
            methods: vec![
                MethodInfo { name: "enable".into(), code: ENABLE, args: vec![ArgKind::Int32] },
                MethodInfo { name: "completeSetup".into(), code: COMPLETE_SETUP, args: vec![] },
                MethodInfo {
                    name: "readSupportedCodecs".into(),
                    code: READ_SUPPORTED_CODECS,
                    args: vec![],
                },
                MethodInfo {
                    name: "startDiscovery".into(),
                    code: START_DISCOVERY,
                    args: vec![ArgKind::Int32],
                },
                MethodInfo {
                    name: "connectChannel".into(),
                    code: CONNECT_CHANNEL,
                    args: vec![ArgKind::Int32, ArgKind::Int64],
                },
                MethodInfo {
                    name: "disconnectChannel".into(),
                    code: DISCONNECT_CHANNEL,
                    args: vec![],
                },
                MethodInfo {
                    name: "startServer".into(),
                    code: START_SERVER,
                    args: vec![ArgKind::Int32],
                },
                MethodInfo { name: "acceptClient".into(), code: ACCEPT_CLIENT, args: vec![] },
                MethodInfo { name: "closeClient".into(), code: CLOSE_CLIENT, args: vec![] },
                MethodInfo { name: "closeServer".into(), code: CLOSE_SERVER, args: vec![] },
                MethodInfo { name: "disable".into(), code: DISABLE, args: vec![] },
                MethodInfo { name: "sendData".into(), code: SEND_DATA, args: vec![ArgKind::Blob] },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        match txn.code {
            ENABLE => {
                let mode = r.read_i32()?;
                if !(0..=1).contains(&mode) {
                    return Err(TransactionError::BadParcel("mode must be 0 or 1".into()));
                }
                if self.hci_fd.is_none() {
                    let fd = sys
                        .sys(Syscall::Socket { domain: af::BLUETOOTH, ty: 3, proto: btproto::HCI })
                        .fd()
                        .map_err(|e| TransactionError::InvalidOperation(format!("socket: {e}")))?;
                    expect_ok(sys.sys(Syscall::Bind { fd, addr: 0 }), "bind")?;
                    // Upload the vendor controller firmware (the HAL ships
                    // the blob; bring-up fails without it).
                    let mut blob = bt::FIRMWARE_MAGIC.to_vec();
                    blob.extend_from_slice(&[0u8; 60]);
                    expect_ok(sys.sys(Syscall::Write { fd, data: blob }), "firmware")?;
                    self.hci_fd = Some(fd);
                }
                let fd = self.hci().expect("just set");
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: bt::HCIDEVUP,
                        arg: words(&[mode as u32]),
                    }),
                    "hci up",
                )?;
                Ok(Parcel::new())
            }
            COMPLETE_SETUP => {
                let fd = self.hci()?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: bt::HCIDEVSETUP, arg: words(&[0]) }),
                    "hci setup",
                )?;
                Ok(Parcel::new())
            }
            READ_SUPPORTED_CODECS => {
                let fd = self.hci()?;
                let n = expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: bt::HCIREADCODECS, arg: vec![] }),
                    "read codecs",
                )?;
                let mut reply = Parcel::new();
                reply.write_i32(n as i32);
                Ok(reply)
            }
            START_DISCOVERY => {
                let duration = r.read_i32()?.clamp(1, 8) as u32;
                let fd = self.hci()?;
                let found = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: bt::HCIINQUIRY,
                        arg: words(&[duration]),
                    }),
                    "inquiry",
                )?;
                let mut reply = Parcel::new();
                reply.write_i32(found as i32);
                Ok(reply)
            }
            CONNECT_CHANNEL => {
                let ty = r.read_i32()?;
                let addr = r.read_i64()?;
                if !(1..=2).contains(&ty) {
                    return Err(TransactionError::BadParcel("channel type".into()));
                }
                if self.channel_fd.is_some() {
                    return Err(TransactionError::InvalidOperation("channel already open".into()));
                }
                let fd = sys
                    .sys(Syscall::Socket {
                        domain: af::BLUETOOTH,
                        ty: ty as u32,
                        proto: btproto::L2CAP,
                    })
                    .fd()
                    .map_err(|e| TransactionError::InvalidOperation(format!("socket: {e}")))?;
                expect_ok(sys.sys(Syscall::Connect { fd, addr: addr as u64 }), "connect")?;
                self.channel_fd = Some(fd);
                Ok(Parcel::new())
            }
            DISCONNECT_CHANNEL => {
                let fd = self.channel_fd.ok_or_else(|| {
                    TransactionError::InvalidOperation("no channel".into())
                })?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: bt::L2CAP_DISCONN_REQ, arg: vec![] }),
                    "disconnect",
                )?;
                let _ = sys.sys(Syscall::Close { fd });
                self.channel_fd = None;
                Ok(Parcel::new())
            }
            START_SERVER => {
                let psm = r.read_i32()?;
                if !(1..=0x1fff).contains(&psm) {
                    return Err(TransactionError::BadParcel("psm".into()));
                }
                if self.server_fd.is_some() {
                    return Err(TransactionError::InvalidOperation("server running".into()));
                }
                let fd = sys
                    .sys(Syscall::Socket { domain: af::BLUETOOTH, ty: 1, proto: btproto::L2CAP })
                    .fd()
                    .map_err(|e| TransactionError::InvalidOperation(format!("socket: {e}")))?;
                expect_ok(sys.sys(Syscall::Bind { fd, addr: psm as u64 }), "bind")?;
                expect_ok(sys.sys(Syscall::Listen { fd, backlog: 2 }), "listen")?;
                self.server_fd = Some(fd);
                Ok(Parcel::new())
            }
            ACCEPT_CLIENT => {
                let fd = self.server_fd.ok_or_else(|| {
                    TransactionError::InvalidOperation("no server".into())
                })?;
                let client = sys
                    .sys(Syscall::Accept { fd })
                    .fd()
                    .map_err(|e| TransactionError::InvalidOperation(format!("accept: {e}")))?;
                if let Some(old) = self.client_fd.replace(client) {
                    let _ = sys.sys(Syscall::Close { fd: old });
                }
                Ok(Parcel::new())
            }
            CLOSE_SERVER => {
                let fd = self.server_fd.take().ok_or_else(|| {
                    TransactionError::InvalidOperation("no server".into())
                })?;
                expect_ok(sys.sys(Syscall::Close { fd }), "close server")?;
                Ok(Parcel::new())
            }
            CLOSE_CLIENT => {
                let fd = self.client_fd.take().ok_or_else(|| {
                    TransactionError::InvalidOperation("no client".into())
                })?;
                expect_ok(sys.sys(Syscall::Close { fd }), "close client")?;
                Ok(Parcel::new())
            }
            DISABLE => {
                let fd = self.hci()?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: bt::HCIDEVDOWN, arg: vec![] }),
                    "hci down",
                )?;
                let _ = sys.sys(Syscall::Close { fd });
                self.hci_fd = None;
                Ok(Parcel::new())
            }
            SEND_DATA => {
                let blob = r.read_blob()?;
                let fd = self.channel_fd.or(self.client_fd).ok_or_else(|| {
                    TransactionError::InvalidOperation("no channel".into())
                })?;
                let n = expect_ok(
                    sys.sys(Syscall::Write { fd, data: blob.to_vec() }),
                    "send",
                )?;
                let mut reply = Parcel::new();
                reply.write_i32(n as i32);
                Ok(reply)
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::drivers::bt::{BtBugs, BtStack};
    use simkernel::report::BugKind;
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.bluetooth@1.1::IBluetoothHci/default";

    fn setup(bugs: BtBugs) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::with_bt(BtStack::with_bugs(bugs));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(BluetoothHal::new()));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, args: Parcel) -> TransactionResult {
        rt.transact(k, DESC, Transaction::new(code, args))
    }

    fn i32_parcel(v: i32) -> Parcel {
        let mut p = Parcel::new();
        p.write_i32(v);
        p
    }

    #[test]
    fn bug7_staged_enable_then_read_codecs_triggers_kasan() {
        let (mut k, mut rt) = setup(BtBugs { hci_codecs_kasan: true, ..Default::default() });
        call(&mut k, &mut rt, ENABLE, i32_parcel(1)).unwrap();
        // readSupportedCodecs before completeSetup → kernel KASAN report.
        let _ = call(&mut k, &mut rt, READ_SUPPORTED_CODECS, Parcel::new());
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::KasanInvalidAccess);
    }

    #[test]
    fn full_enable_then_read_codecs_is_fine() {
        let (mut k, mut rt) = setup(BtBugs { hci_codecs_kasan: true, ..Default::default() });
        call(&mut k, &mut rt, ENABLE, i32_parcel(0)).unwrap();
        let reply = call(&mut k, &mut rt, READ_SUPPORTED_CODECS, Parcel::new()).unwrap();
        assert_eq!(reply.reader().read_i32().unwrap(), 3);
        assert!(k.take_bugs().is_empty());
    }

    #[test]
    fn bug8_dgram_channel_disconnect_warns() {
        let (mut k, mut rt) = setup(BtBugs { l2cap_disconn_warn: true, ..Default::default() });
        let mut p = Parcel::new();
        p.write_i32(2).write_i64(0x99);
        call(&mut k, &mut rt, CONNECT_CHANNEL, p).unwrap();
        call(&mut k, &mut rt, DISCONNECT_CHANNEL, Parcel::new()).unwrap();
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert!(bugs[0].title.contains("l2cap_send_disconn_req"));
    }

    #[test]
    fn bug11_server_close_then_client_use_triggers_uaf() {
        let (mut k, mut rt) = setup(BtBugs { accept_unlink_uaf: true, ..Default::default() });
        call(&mut k, &mut rt, START_SERVER, i32_parcel(0x1001)).unwrap();
        call(&mut k, &mut rt, ACCEPT_CLIENT, Parcel::new()).unwrap();
        call(&mut k, &mut rt, CLOSE_SERVER, Parcel::new()).unwrap();
        // Sending on the orphaned accepted client walks the freed parent.
        let mut p = Parcel::new();
        p.write_blob(vec![1, 2, 3]);
        let _ = call(&mut k, &mut rt, SEND_DATA, p);
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::KasanUseAfterFree);
        assert!(bugs[0].title.contains("bt_accept_unlink"));
    }

    #[test]
    fn discovery_requires_full_init() {
        let (mut k, mut rt) = setup(BtBugs::default());
        call(&mut k, &mut rt, ENABLE, i32_parcel(1)).unwrap();
        let err = call(&mut k, &mut rt, START_DISCOVERY, i32_parcel(4)).unwrap_err();
        assert!(matches!(err, TransactionError::InvalidOperation(_)));
        call(&mut k, &mut rt, COMPLETE_SETUP, Parcel::new()).unwrap();
        let reply = call(&mut k, &mut rt, START_DISCOVERY, i32_parcel(4)).unwrap();
        assert_eq!(reply.reader().read_i32().unwrap(), 4);
    }

    #[test]
    fn send_data_on_stream_channel() {
        let (mut k, mut rt) = setup(BtBugs::default());
        let mut p = Parcel::new();
        p.write_i32(1).write_i64(0x42);
        call(&mut k, &mut rt, CONNECT_CHANNEL, p).unwrap();
        let mut p = Parcel::new();
        p.write_blob(vec![1, 2, 3, 4]);
        let reply = call(&mut k, &mut rt, SEND_DATA, p).unwrap();
        assert_eq!(reply.reader().read_i32().unwrap(), 4);
    }
}
