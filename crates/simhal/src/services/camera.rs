//! Camera provider HAL
//! (`android.hardware.camera.provider@2.6::ICameraProvider/internal/0`).
//!
//! Carries Table II bug **#9** (device C1): submitting a capture request
//! after the session's streams were torn down dereferences the freed
//! stream configuration.

use crate::service::{native_crash, HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::v4l2;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: open a capture session.
pub const OPEN_SESSION: u32 = 1;
/// Method code: configure capture streams.
pub const CONFIGURE_STREAMS: u32 = 2;
/// Method code: submit one capture request.
pub const PROCESS_CAPTURE_REQUEST: u32 = 3;
/// Method code: flush in-flight requests.
pub const FLUSH: u32 = 4;
/// Method code: close the session (tears down streams).
pub const CLOSE_SESSION: u32 = 5;

/// The camera provider service.
#[derive(Debug)]
pub struct CameraHal {
    crash_armed: bool,
    fd: Option<Fd>,
    session_open: bool,
    streams: u32,
    streaming: bool,
    /// Streams were torn down but the (vendor-buggy) HAL kept the stale
    /// stream table pointer.
    torn_down: bool,
    requests: u64,
}

impl CameraHal {
    /// Creates the camera service; `crash_armed` arms bug #9.
    pub fn new(crash_armed: bool) -> Self {
        Self {
            crash_armed,
            fd: None,
            session_open: false,
            streams: 0,
            streaming: false,
            torn_down: false,
            requests: 0,
        }
    }
}

impl HalService for CameraHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.camera.provider@2.6::ICameraProvider/internal/0".into(),
            methods: vec![
                MethodInfo { name: "openSession".into(), code: OPEN_SESSION, args: vec![] },
                MethodInfo {
                    name: "configureStreams".into(),
                    code: CONFIGURE_STREAMS,
                    args: vec![ArgKind::Int32, ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo {
                    name: "processCaptureRequest".into(),
                    code: PROCESS_CAPTURE_REQUEST,
                    args: vec![],
                },
                MethodInfo { name: "flush".into(), code: FLUSH, args: vec![] },
                MethodInfo { name: "closeSession".into(), code: CLOSE_SESSION, args: vec![] },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        match txn.code {
            OPEN_SESSION => {
                if self.session_open {
                    return Err(TransactionError::InvalidOperation("session already open".into()));
                }
                ensure_open(sys, &mut self.fd, "/dev/video0")?;
                self.session_open = true;
                self.torn_down = false;
                Ok(Parcel::new())
            }
            CONFIGURE_STREAMS => {
                let n = r.read_i32()?;
                let (w, h) = (r.read_i32()?, r.read_i32()?);
                if !self.session_open {
                    return Err(TransactionError::InvalidOperation("no session".into()));
                }
                if !(1..=8).contains(&n) {
                    return Err(TransactionError::BadParcel("stream count out of range".into()));
                }
                let fd = self.fd.expect("session implies fd");
                let (w, h) = (w.clamp(16, 4096) as u32, h.clamp(16, 4096) as u32);
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: v4l2::VIDIOC_S_FMT,
                        arg: words(&[w, h, v4l2::PIXFMTS[0]]),
                    }),
                    "set format",
                )?;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: v4l2::VIDIOC_REQBUFS,
                        arg: words(&[n as u32 * 2]),
                    }),
                    "request buffers",
                )?;
                self.streams = n as u32;
                self.torn_down = false;
                Ok(Parcel::new())
            }
            PROCESS_CAPTURE_REQUEST => {
                if !self.session_open {
                    return Err(TransactionError::InvalidOperation("no session".into()));
                }
                if self.torn_down {
                    if self.crash_armed {
                        // Bug #9: the request path walks the freed stream
                        // configuration table.
                        return Err(native_crash("Native crash in Camera HAL (redacted)"));
                    }
                    return Err(TransactionError::InvalidOperation("streams torn down".into()));
                }
                if self.streams == 0 {
                    return Err(TransactionError::InvalidOperation("no streams".into()));
                }
                let fd = self.fd.expect("session implies fd");
                let slot = (self.requests % u64::from(self.streams * 2)) as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: v4l2::VIDIOC_QBUF,
                        arg: words(&[slot]),
                    }),
                    "queue buffer",
                )?;
                if !self.streaming {
                    expect_ok(
                        sys.sys(Syscall::Ioctl { fd, request: v4l2::VIDIOC_STREAMON, arg: vec![] }),
                        "stream on",
                    )?;
                    self.streaming = true;
                }
                let idx = expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: v4l2::VIDIOC_DQBUF, arg: vec![] }),
                    "dequeue buffer",
                )?;
                self.requests += 1;
                let mut reply = Parcel::new();
                reply.write_i64(idx as i64);
                Ok(reply)
            }
            FLUSH => {
                if !self.session_open || !self.streaming {
                    return Err(TransactionError::InvalidOperation("not streaming".into()));
                }
                let fd = self.fd.expect("session implies fd");
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: v4l2::VIDIOC_STREAMOFF, arg: vec![] }),
                    "stream off",
                )?;
                self.streaming = false;
                Ok(Parcel::new())
            }
            CLOSE_SESSION => {
                if !self.session_open {
                    return Err(TransactionError::InvalidOperation("no session".into()));
                }
                let fd = self.fd.expect("session implies fd");
                if self.streaming {
                    let _ = sys.sys(Syscall::Ioctl {
                        fd,
                        request: v4l2::VIDIOC_STREAMOFF,
                        arg: vec![],
                    });
                    self.streaming = false;
                }
                // Vendor bug setup: buffers are released and the stream
                // table freed, but the session object — and its dangling
                // stream pointer — stays "open" for further requests.
                let _ = sys.sys(Syscall::Ioctl {
                    fd,
                    request: v4l2::VIDIOC_REQBUFS,
                    arg: words(&[0]),
                });
                self.streams = 0;
                self.torn_down = true;
                Ok(Parcel::new())
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new(self.crash_armed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.camera.provider@2.6::ICameraProvider/internal/0";

    fn setup(armed: bool) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::v4l2::V4l2Device::new(0)));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(CameraHal::new(armed)));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, args: Parcel) -> TransactionResult {
        rt.transact(k, DESC, Transaction::new(code, args))
    }

    fn configured(k: &mut Kernel, rt: &mut HalRuntime) {
        call(k, rt, OPEN_SESSION, Parcel::new()).unwrap();
        let mut p = Parcel::new();
        p.write_i32(2).write_i32(1280).write_i32(720);
        call(k, rt, CONFIGURE_STREAMS, p).unwrap();
    }

    #[test]
    fn bug9_capture_after_close_crashes_when_armed() {
        let (mut k, mut rt) = setup(true);
        configured(&mut k, &mut rt);
        call(&mut k, &mut rt, PROCESS_CAPTURE_REQUEST, Parcel::new()).unwrap();
        call(&mut k, &mut rt, CLOSE_SESSION, Parcel::new()).unwrap();
        let err = call(&mut k, &mut rt, PROCESS_CAPTURE_REQUEST, Parcel::new()).unwrap_err();
        assert!(matches!(err, TransactionError::DeadObject { .. }));
        assert_eq!(rt.take_crashes()[0].title, "Native crash in Camera HAL (redacted)");
    }

    #[test]
    fn capture_after_close_is_invalid_when_unarmed() {
        let (mut k, mut rt) = setup(false);
        configured(&mut k, &mut rt);
        call(&mut k, &mut rt, CLOSE_SESSION, Parcel::new()).unwrap();
        let err = call(&mut k, &mut rt, PROCESS_CAPTURE_REQUEST, Parcel::new()).unwrap_err();
        assert!(matches!(err, TransactionError::InvalidOperation(_)));
        assert!(rt.take_crashes().is_empty());
    }

    #[test]
    fn capture_pipeline_works() {
        let (mut k, mut rt) = setup(true);
        configured(&mut k, &mut rt);
        for _ in 0..3 {
            call(&mut k, &mut rt, PROCESS_CAPTURE_REQUEST, Parcel::new()).unwrap();
        }
        call(&mut k, &mut rt, FLUSH, Parcel::new()).unwrap();
        assert!(rt.take_crashes().is_empty());
    }

    #[test]
    fn reconfigure_after_close_restores_service() {
        let (mut k, mut rt) = setup(true);
        configured(&mut k, &mut rt);
        call(&mut k, &mut rt, CLOSE_SESSION, Parcel::new()).unwrap();
        let mut p = Parcel::new();
        p.write_i32(1).write_i32(640).write_i32(480);
        call(&mut k, &mut rt, CONFIGURE_STREAMS, p).unwrap();
        call(&mut k, &mut rt, PROCESS_CAPTURE_REQUEST, Parcel::new()).unwrap();
    }

    #[test]
    fn stream_count_validated() {
        let (mut k, mut rt) = setup(true);
        call(&mut k, &mut rt, OPEN_SESSION, Parcel::new()).unwrap();
        let mut p = Parcel::new();
        p.write_i32(0).write_i32(640).write_i32(480);
        let err = call(&mut k, &mut rt, CONFIGURE_STREAMS, p).unwrap_err();
        assert!(matches!(err, TransactionError::BadParcel(_)));
    }
}
