//! Graphics composer HAL
//! (`android.hardware.graphics.composer@2.4::IComposer/default`).
//!
//! Carries Table II bug **#2** (device A1): presenting a display while a
//! layer's buffer has been detached dereferences the stale buffer pointer
//! and segfaults, once enough layers are in flight to take the batched
//! commit path. Also the natural path to kernel bug #3: presenting many
//! buffered layers builds a GPU import chain whose depth equals the layer
//! count.

use crate::service::{native_crash, HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::{drm, gpu, ion};
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: initialize the composer (mode-set, GPU context).
pub const INIT: u32 = 1;
/// Method code: create a layer; returns its id.
pub const CREATE_LAYER: u32 = 2;
/// Method code: allocate and attach a buffer to a layer.
pub const SET_LAYER_BUFFER: u32 = 3;
/// Method code: detach (free) a layer's buffer, keeping the layer.
pub const DETACH_BUFFER: u32 = 4;
/// Method code: present all layers.
pub const PRESENT_DISPLAY: u32 = 5;
/// Method code: destroy a layer.
pub const DESTROY_LAYER: u32 = 6;
/// Method code: query the active display config.
pub const GET_DISPLAY_CONFIG: u32 = 7;

/// The maximum number of layers the composer tracks.
pub const MAX_LAYERS: usize = 12;

#[derive(Debug, Clone, Copy)]
struct Layer {
    id: i32,
    /// ION share token backing the layer, if attached.
    token: Option<u32>,
    /// DRM framebuffer id, kept (stale!) even after a detach.
    fb: Option<u32>,
    detached: bool,
}

/// The composer service.
pub struct ComposerHal {
    crash_armed: bool,
    drm_fd: Option<Fd>,
    ion_fd: Option<Fd>,
    gpu_fd: Option<Fd>,
    gpu_ctx: Option<u32>,
    layers: Vec<Layer>,
    next_layer: i32,
    presents: u64,
}

impl ComposerHal {
    /// Creates the composer; `crash_armed` arms bug #2.
    pub fn new(crash_armed: bool) -> Self {
        Self {
            crash_armed,
            drm_fd: None,
            ion_fd: None,
            gpu_fd: None,
            gpu_ctx: None,
            layers: Vec::new(),
            next_layer: 1,
            presents: 0,
        }
    }

    fn initialized(&self) -> Result<(), TransactionError> {
        if self.gpu_ctx.is_none() {
            return Err(TransactionError::InvalidOperation("composer not initialized".into()));
        }
        Ok(())
    }
}

impl HalService for ComposerHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.graphics.composer@2.4::IComposer/default".into(),
            methods: vec![
                MethodInfo { name: "init".into(), code: INIT, args: vec![] },
                MethodInfo { name: "createLayer".into(), code: CREATE_LAYER, args: vec![] },
                MethodInfo {
                    name: "setLayerBuffer".into(),
                    code: SET_LAYER_BUFFER,
                    args: vec![ArgKind::Handle, ArgKind::Int32],
                },
                MethodInfo {
                    name: "detachBuffer".into(),
                    code: DETACH_BUFFER,
                    args: vec![ArgKind::Handle],
                },
                MethodInfo { name: "presentDisplay".into(), code: PRESENT_DISPLAY, args: vec![] },
                MethodInfo {
                    name: "destroyLayer".into(),
                    code: DESTROY_LAYER,
                    args: vec![ArgKind::Handle],
                },
                MethodInfo {
                    name: "getDisplayConfig".into(),
                    code: GET_DISPLAY_CONFIG,
                    args: vec![],
                },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        match txn.code {
            INIT => {
                let drm_fd = ensure_open(sys, &mut self.drm_fd, "/dev/dri0")?;
                ensure_open(sys, &mut self.ion_fd, "/dev/ion")?;
                let gpu_fd = ensure_open(sys, &mut self.gpu_fd, "/dev/gpu0")?;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd: drm_fd,
                        request: drm::DRM_MODE_SET,
                        arg: words(&[1920, 1080, 60]),
                    }),
                    "mode set",
                )?;
                if self.gpu_ctx.is_none() {
                    let ctx = expect_ok(
                        sys.sys(Syscall::Ioctl {
                            fd: gpu_fd,
                            request: gpu::GPU_CREATE_CTX,
                            arg: vec![],
                        }),
                        "gpu ctx",
                    )?;
                    self.gpu_ctx = Some(ctx as u32);
                }
                Ok(Parcel::new())
            }
            CREATE_LAYER => {
                self.initialized()?;
                if self.layers.len() >= MAX_LAYERS {
                    return Err(TransactionError::InvalidOperation("too many layers".into()));
                }
                let id = self.next_layer;
                self.next_layer += 1;
                self.layers.push(Layer { id, token: None, fb: None, detached: false });
                let mut reply = Parcel::new();
                reply.write_i32(id);
                Ok(reply)
            }
            SET_LAYER_BUFFER => {
                self.initialized()?;
                let layer_id = r.read_i32()?;
                let size_kb = r.read_i32()?;
                if !(1..=16384).contains(&size_kb) {
                    return Err(TransactionError::BadParcel("buffer size out of range".into()));
                }
                let ion_fd = self.ion_fd.expect("initialized");
                let drm_fd = self.drm_fd.expect("initialized");
                let layer = self
                    .layers
                    .iter_mut()
                    .find(|l| l.id == layer_id)
                    .ok_or_else(|| TransactionError::InvalidOperation("no such layer".into()))?;
                let handle = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd: ion_fd,
                        request: ion::ION_ALLOC,
                        arg: words(&[size_kb as u32 * 1024, 1, 0]),
                    }),
                    "ion alloc",
                )?;
                let token = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd: ion_fd,
                        request: ion::ION_SHARE,
                        arg: words(&[handle as u32]),
                    }),
                    "ion share",
                )? as u32;
                let fb = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd: drm_fd,
                        request: drm::DRM_CREATE_FB,
                        arg: words(&[token]),
                    }),
                    "create fb",
                )? as u32;
                layer.token = Some(token);
                layer.fb = Some(fb);
                layer.detached = false;
                Ok(Parcel::new())
            }
            DETACH_BUFFER => {
                self.initialized()?;
                let layer_id = r.read_i32()?;
                let ion_fd = self.ion_fd.expect("initialized");
                let layer = self
                    .layers
                    .iter_mut()
                    .find(|l| l.id == layer_id)
                    .ok_or_else(|| TransactionError::InvalidOperation("no such layer".into()))?;
                let Some(token) = layer.token.take() else {
                    return Err(TransactionError::InvalidOperation("layer has no buffer".into()));
                };
                // Free the backing allocation but — vendor bug — keep the
                // DRM fb id and the layer on the present list.
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd: ion_fd,
                        request: ion::ION_FREE,
                        arg: words(&[token & 0xFFFF]),
                    }),
                    "ion free",
                )?;
                layer.detached = true;
                Ok(Parcel::new())
            }
            PRESENT_DISPLAY => {
                self.initialized()?;
                let drm_fd = self.drm_fd.expect("initialized");
                let gpu_fd = self.gpu_fd.expect("initialized");
                let gpu_ctx = self.gpu_ctx.expect("initialized");
                let live: Vec<Layer> = self
                    .layers
                    .iter()
                    .copied()
                    .filter(|l| l.fb.is_some())
                    .collect();
                if live.is_empty() {
                    return Err(TransactionError::InvalidOperation("nothing to present".into()));
                }
                let any_detached = live.iter().any(|l| l.detached);
                if any_detached && live.len() >= 3 && self.crash_armed {
                    // Bug #2: the batched-commit path walks the stale
                    // buffer pointer of the detached layer.
                    return Err(native_crash("Native crash in Graphics HAL (redacted)"));
                }
                // Import each live buffer twice (front + back buffer),
                // chaining imports as the blob compositor does — so the
                // chain depth is 2 × the live layer count, and kernel bug
                // #3's subclass limit is reached at 4 buffered layers.
                let mut parent = 0u32;
                'import: for layer in live.iter().filter(|l| !l.detached) {
                    let token = layer.token.expect("attached layer has token");
                    for _ in 0..2 {
                        match sys.sys(Syscall::Ioctl {
                            fd: gpu_fd,
                            request: gpu::GPU_IMPORT,
                            arg: words(&[gpu_ctx, token, parent]),
                        }) {
                            simkernel::SyscallRet::Ok(id) => parent = id as u32,
                            // Import-chain failure (e.g. subclass limit):
                            // composer falls back to a direct commit.
                            _ => break 'import,
                        }
                    }
                }
                let planes = live.len().min(8) as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd: drm_fd,
                        request: drm::DRM_PLANE_COMMIT,
                        arg: words(&[planes, 0x1]),
                    }),
                    "plane commit",
                )?;
                if let Some(fb) = live.iter().rev().find_map(|l| l.fb) {
                    expect_ok(
                        sys.sys(Syscall::Ioctl {
                            fd: drm_fd,
                            request: drm::DRM_PAGE_FLIP,
                            arg: words(&[fb]),
                        }),
                        "page flip",
                    )?;
                }
                self.presents += 1;
                let mut reply = Parcel::new();
                reply.write_i64(self.presents as i64);
                Ok(reply)
            }
            DESTROY_LAYER => {
                self.initialized()?;
                let layer_id = r.read_i32()?;
                let drm_fd = self.drm_fd.expect("initialized");
                let pos = self
                    .layers
                    .iter()
                    .position(|l| l.id == layer_id)
                    .ok_or_else(|| TransactionError::InvalidOperation("no such layer".into()))?;
                let layer = self.layers.remove(pos);
                if let Some(fb) = layer.fb {
                    // Best effort; the fb may already be gone.
                    let _ = sys.sys(Syscall::Ioctl {
                        fd: drm_fd,
                        request: drm::DRM_DESTROY_FB,
                        arg: words(&[fb]),
                    });
                }
                Ok(Parcel::new())
            }
            GET_DISPLAY_CONFIG => {
                let mut reply = Parcel::new();
                reply.write_i32(1920).write_i32(1080).write_i32(60);
                Ok(reply)
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new(self.crash_armed);
    }
}

impl std::fmt::Debug for ComposerHal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComposerHal")
            .field("layers", &self.layers.len())
            .field("presents", &self.presents)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::drivers::gpu::GpuBugs;
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.graphics.composer@2.4::IComposer/default";

    fn setup(crash_armed: bool, gpu_bug: bool) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::drm::DrmDevice::new()));
        kernel.register_device(Box::new(simkernel::drivers::ion::IonDevice::new()));
        kernel.register_device(Box::new(simkernel::drivers::gpu::GpuDevice::new(GpuBugs {
            subclass_bug: gpu_bug,
        })));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(ComposerHal::new(crash_armed)));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, args: Parcel) -> TransactionResult {
        rt.transact(k, DESC, Transaction::new(code, args))
    }

    fn create_buffered_layer(k: &mut Kernel, rt: &mut HalRuntime) -> i32 {
        let reply = call(k, rt, CREATE_LAYER, Parcel::new()).unwrap();
        let id = reply.reader().read_i32().unwrap();
        let mut p = Parcel::new();
        p.write_i32(id).write_i32(64);
        call(k, rt, SET_LAYER_BUFFER, p).unwrap();
        id
    }

    #[test]
    fn present_without_init_is_invalid_operation() {
        let (mut k, mut rt) = setup(true, false);
        let err = call(&mut k, &mut rt, PRESENT_DISPLAY, Parcel::new()).unwrap_err();
        assert!(matches!(err, TransactionError::InvalidOperation(_)));
        assert!(rt.is_alive(DESC));
    }

    #[test]
    fn bug2_present_with_detached_layer_crashes_when_armed() {
        let (mut k, mut rt) = setup(true, false);
        call(&mut k, &mut rt, INIT, Parcel::new()).unwrap();
        let first = create_buffered_layer(&mut k, &mut rt);
        for _ in 0..2 {
            create_buffered_layer(&mut k, &mut rt);
        }
        let mut p = Parcel::new();
        p.write_i32(first);
        call(&mut k, &mut rt, DETACH_BUFFER, p).unwrap();
        let err = call(&mut k, &mut rt, PRESENT_DISPLAY, Parcel::new()).unwrap_err();
        assert!(matches!(err, TransactionError::DeadObject { .. }));
        let crashes = rt.take_crashes();
        assert_eq!(crashes.len(), 1);
        assert_eq!(crashes[0].title, "Native crash in Graphics HAL (redacted)");
    }

    #[test]
    fn detached_present_is_benign_when_unarmed() {
        let (mut k, mut rt) = setup(false, false);
        call(&mut k, &mut rt, INIT, Parcel::new()).unwrap();
        let first = create_buffered_layer(&mut k, &mut rt);
        for _ in 0..2 {
            create_buffered_layer(&mut k, &mut rt);
        }
        let mut p = Parcel::new();
        p.write_i32(first);
        call(&mut k, &mut rt, DETACH_BUFFER, p).unwrap();
        call(&mut k, &mut rt, PRESENT_DISPLAY, Parcel::new()).unwrap();
        assert!(rt.take_crashes().is_empty());
    }

    #[test]
    fn eight_buffered_layers_reach_gpu_subclass_bug() {
        let (mut k, mut rt) = setup(false, true);
        call(&mut k, &mut rt, INIT, Parcel::new()).unwrap();
        for _ in 0..4 {
            create_buffered_layer(&mut k, &mut rt);
        }
        // The deep import chain trips the (fatal) lockdep BUG, wedging the
        // kernel, so the present itself fails with EIO afterwards.
        let _ = call(&mut k, &mut rt, PRESENT_DISPLAY, Parcel::new());
        assert!(k.is_wedged());
        let bugs = k.take_bugs();
        assert!(
            bugs.iter().any(|b| b.title.contains("invalid subclass")),
            "kernel bug #3 should fire through the HAL path: {bugs:?}"
        );
    }

    #[test]
    fn normal_present_flow_succeeds() {
        let (mut k, mut rt) = setup(true, false);
        call(&mut k, &mut rt, INIT, Parcel::new()).unwrap();
        create_buffered_layer(&mut k, &mut rt);
        create_buffered_layer(&mut k, &mut rt);
        let reply = call(&mut k, &mut rt, PRESENT_DISPLAY, Parcel::new()).unwrap();
        assert_eq!(reply.reader().read_i64().unwrap(), 1);
        assert!(k.take_bugs().is_empty());
    }
}
