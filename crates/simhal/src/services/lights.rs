//! Lights HAL (`android.hardware.lights@2.0::ILight/default`).

use crate::service::{HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::leds;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: set a light's brightness.
pub const SET_LIGHT: u32 = 1;
/// Method code: set a blink pattern.
pub const BLINK: u32 = 2;

/// The lights HAL service.
#[derive(Debug, Default)]
pub struct LightsHal {
    fd: Option<Fd>,
}

impl LightsHal {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HalService for LightsHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.lights@2.0::ILight/default".into(),
            methods: vec![
                MethodInfo {
                    name: "setLight".into(),
                    code: SET_LIGHT,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo {
                    name: "blink".into(),
                    code: BLINK,
                    args: vec![ArgKind::Int32, ArgKind::Int32, ArgKind::Int32],
                },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        let fd = ensure_open(sys, &mut self.fd, "/dev/leds")?;
        match txn.code {
            SET_LIGHT => {
                let id = r.read_i32()?;
                let level = r.read_i32()?;
                if id < 0 || !(0..=255).contains(&level) {
                    return Err(TransactionError::BadParcel("led/level".into()));
                }
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: leds::LED_SET_BRIGHTNESS,
                        arg: words(&[id as u32, level as u32]),
                    }),
                    "set brightness",
                )?;
                Ok(Parcel::new())
            }
            BLINK => {
                let id = r.read_i32()?;
                let on = r.read_i32()?.clamp(50, 5000) as u32;
                let off = r.read_i32()?.clamp(50, 5000) as u32;
                if id < 0 {
                    return Err(TransactionError::BadParcel("led".into()));
                }
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: leds::LED_SET_BLINK,
                        arg: words(&[id as u32, on, off]),
                    }),
                    "blink",
                )?;
                Ok(Parcel::new())
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::Kernel;

    #[test]
    fn set_light_reaches_kernel_driver() {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::leds::LedsDevice::new()));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(LightsHal::new()));
        let mut p = Parcel::new();
        p.write_i32(0).write_i32(255);
        rt.transact(
            &mut kernel,
            "android.hardware.lights@2.0::ILight/default",
            Transaction::new(SET_LIGHT, p),
        )
        .unwrap();
        assert!(kernel.global_coverage().len() > 1);
    }
}
