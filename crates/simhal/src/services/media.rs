//! Media codec HAL (`android.hardware.media.c2@1.2::IComponentStore/default`).
//!
//! Carries Table II bug **#6** (device A2): flushing while the component is
//! draining with output still queued corrupts the HAL's buffer bookkeeping
//! and segfaults.

use crate::service::{native_crash, HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::vcodec;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: create a component for codec id.
pub const CREATE_COMPONENT: u32 = 1;
/// Method code: configure width/height.
pub const CONFIGURE: u32 = 2;
/// Method code: start the component.
pub const START: u32 = 3;
/// Method code: queue an input buffer.
pub const QUEUE_INPUT: u32 = 4;
/// Method code: dequeue an output frame.
pub const DEQUEUE_OUTPUT: u32 = 5;
/// Method code: flush all buffers.
pub const FLUSH: u32 = 6;
/// Method code: signal end-of-stream.
pub const DRAIN: u32 = 7;
/// Method code: stop the component.
pub const STOP: u32 = 8;
/// Method code: release the component.
pub const RELEASE: u32 = 9;

/// The media codec service.
#[derive(Debug)]
pub struct MediaHal {
    crash_armed: bool,
    fd: Option<Fd>,
    codec: Option<u32>,
    running: bool,
    draining: bool,
    /// HAL-side count of outputs believed queued in the kernel.
    out_pending: u32,
    /// Inputs queued since the last start/flush (work believed in flight).
    in_flight: u32,
}

impl MediaHal {
    /// Creates the media service; `crash_armed` arms bug #6.
    pub fn new(crash_armed: bool) -> Self {
        Self {
            crash_armed,
            fd: None,
            codec: None,
            running: false,
            draining: false,
            out_pending: 0,
            in_flight: 0,
        }
    }
}

impl HalService for MediaHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.media.c2@1.2::IComponentStore/default".into(),
            methods: vec![
                MethodInfo {
                    name: "createComponent".into(),
                    code: CREATE_COMPONENT,
                    args: vec![ArgKind::Int32],
                },
                MethodInfo {
                    name: "configure".into(),
                    code: CONFIGURE,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo { name: "start".into(), code: START, args: vec![] },
                MethodInfo { name: "queueInput".into(), code: QUEUE_INPUT, args: vec![ArgKind::Blob] },
                MethodInfo { name: "dequeueOutput".into(), code: DEQUEUE_OUTPUT, args: vec![] },
                MethodInfo { name: "flush".into(), code: FLUSH, args: vec![] },
                MethodInfo { name: "drain".into(), code: DRAIN, args: vec![] },
                MethodInfo { name: "stop".into(), code: STOP, args: vec![] },
                MethodInfo { name: "release".into(), code: RELEASE, args: vec![] },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        match txn.code {
            CREATE_COMPONENT => {
                let codec = r.read_i32()?;
                if !(1..=4).contains(&codec) {
                    return Err(TransactionError::BadParcel("unknown codec".into()));
                }
                ensure_open(sys, &mut self.fd, "/dev/vcodec")?;
                self.codec = Some(codec as u32);
                Ok(Parcel::new())
            }
            CONFIGURE => {
                let (w, h) = (r.read_i32()?, r.read_i32()?);
                let fd = self.fd.ok_or_else(|| {
                    TransactionError::InvalidOperation("no component".into())
                })?;
                let codec = self.codec.expect("component implies codec");
                let (w, h) = (w.clamp(64, 3840) as u32, h.clamp(64, 2160) as u32);
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: vcodec::VC_CONFIGURE,
                        arg: words(&[codec, w, h]),
                    }),
                    "configure",
                )?;
                Ok(Parcel::new())
            }
            START => {
                let fd = self.fd.ok_or_else(|| {
                    TransactionError::InvalidOperation("no component".into())
                })?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: vcodec::VC_START, arg: vec![] }),
                    "start",
                )?;
                self.running = true;
                self.draining = false;
                self.out_pending = 0;
                self.in_flight = 0;
                Ok(Parcel::new())
            }
            QUEUE_INPUT => {
                let blob = r.read_blob()?;
                if !self.running {
                    return Err(TransactionError::InvalidOperation("not running".into()));
                }
                let fd = self.fd.expect("running implies fd");
                let len = blob.len().clamp(1, 1 << 20) as u32;
                let seq = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: vcodec::VC_QUEUE_IN,
                        arg: words(&[len]),
                    }),
                    "queue input",
                )?;
                self.in_flight += 1;
                if seq % 2 == 0 {
                    self.out_pending += 1;
                }
                Ok(Parcel::new())
            }
            DEQUEUE_OUTPUT => {
                if !self.running {
                    return Err(TransactionError::InvalidOperation("not running".into()));
                }
                let fd = self.fd.expect("running implies fd");
                let frame = expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: vcodec::VC_DEQUEUE_OUT, arg: vec![] }),
                    "dequeue",
                )?;
                self.out_pending = self.out_pending.saturating_sub(1);
                self.in_flight = self.in_flight.saturating_sub(2);
                let mut reply = Parcel::new();
                reply.write_i64(frame as i64);
                Ok(reply)
            }
            FLUSH => {
                if !self.running {
                    return Err(TransactionError::InvalidOperation("not running".into()));
                }
                if self.draining && (self.out_pending > 0 || self.in_flight > 0) && self.crash_armed
                {
                    // Bug #6: the flush path frees buffers the drain worker
                    // is still iterating over.
                    return Err(native_crash("Native crash in Media HAL (redacted)"));
                }
                let fd = self.fd.expect("running implies fd");
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: vcodec::VC_FLUSH, arg: vec![] }),
                    "flush",
                )?;
                self.out_pending = 0;
                self.in_flight = 0;
                self.draining = false;
                Ok(Parcel::new())
            }
            DRAIN => {
                if !self.running {
                    return Err(TransactionError::InvalidOperation("not running".into()));
                }
                let fd = self.fd.expect("running implies fd");
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: vcodec::VC_DRAIN, arg: vec![] }),
                    "drain",
                )?;
                self.draining = true;
                Ok(Parcel::new())
            }
            STOP => {
                let fd = self.fd.ok_or_else(|| {
                    TransactionError::InvalidOperation("no component".into())
                })?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: vcodec::VC_STOP, arg: vec![] }),
                    "stop",
                )?;
                self.running = false;
                self.draining = false;
                self.out_pending = 0;
                self.in_flight = 0;
                Ok(Parcel::new())
            }
            RELEASE => {
                if let Some(fd) = self.fd.take() {
                    let _ = sys.sys(Syscall::Close { fd });
                }
                self.codec = None;
                self.running = false;
                self.draining = false;
                self.out_pending = 0;
                self.in_flight = 0;
                Ok(Parcel::new())
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new(self.crash_armed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.media.c2@1.2::IComponentStore/default";

    fn setup(armed: bool) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::vcodec::VcodecDevice::new()));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(MediaHal::new(armed)));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, args: Parcel) -> TransactionResult {
        rt.transact(k, DESC, Transaction::new(code, args))
    }

    fn to_running(k: &mut Kernel, rt: &mut HalRuntime) {
        let mut p = Parcel::new();
        p.write_i32(1);
        call(k, rt, CREATE_COMPONENT, p).unwrap();
        let mut p = Parcel::new();
        p.write_i32(1280).write_i32(720);
        call(k, rt, CONFIGURE, p).unwrap();
        call(k, rt, START, Parcel::new()).unwrap();
    }

    fn queue(k: &mut Kernel, rt: &mut HalRuntime, n: usize) {
        for _ in 0..n {
            let mut p = Parcel::new();
            p.write_blob(vec![0u8; 512]);
            call(k, rt, QUEUE_INPUT, p).unwrap();
        }
    }

    #[test]
    fn bug6_flush_while_draining_with_pending_output_crashes() {
        let (mut k, mut rt) = setup(true);
        to_running(&mut k, &mut rt);
        queue(&mut k, &mut rt, 2); // second input produces a pending output
        call(&mut k, &mut rt, DRAIN, Parcel::new()).unwrap();
        let err = call(&mut k, &mut rt, FLUSH, Parcel::new()).unwrap_err();
        assert!(matches!(err, TransactionError::DeadObject { .. }));
        let crashes = rt.take_crashes();
        assert_eq!(crashes.len(), 1);
        assert_eq!(crashes[0].title, "Native crash in Media HAL (redacted)");
    }

    #[test]
    fn flush_while_draining_without_in_flight_work_is_fine() {
        let (mut k, mut rt) = setup(true);
        to_running(&mut k, &mut rt);
        queue(&mut k, &mut rt, 2);
        call(&mut k, &mut rt, DEQUEUE_OUTPUT, Parcel::new()).unwrap();
        call(&mut k, &mut rt, DRAIN, Parcel::new()).unwrap();
        call(&mut k, &mut rt, FLUSH, Parcel::new()).unwrap();
        assert!(rt.take_crashes().is_empty());
    }

    #[test]
    fn bug6_flush_while_draining_with_single_input_crashes() {
        let (mut k, mut rt) = setup(true);
        to_running(&mut k, &mut rt);
        queue(&mut k, &mut rt, 1);
        call(&mut k, &mut rt, DRAIN, Parcel::new()).unwrap();
        let err = call(&mut k, &mut rt, FLUSH, Parcel::new()).unwrap_err();
        assert!(matches!(err, TransactionError::DeadObject { .. }));
    }

    #[test]
    fn crash_sequence_benign_when_unarmed() {
        let (mut k, mut rt) = setup(false);
        to_running(&mut k, &mut rt);
        queue(&mut k, &mut rt, 2);
        call(&mut k, &mut rt, DRAIN, Parcel::new()).unwrap();
        call(&mut k, &mut rt, FLUSH, Parcel::new()).unwrap();
        assert!(rt.take_crashes().is_empty());
    }

    #[test]
    fn decode_roundtrip_produces_frame() {
        let (mut k, mut rt) = setup(true);
        to_running(&mut k, &mut rt);
        queue(&mut k, &mut rt, 2);
        let reply = call(&mut k, &mut rt, DEQUEUE_OUTPUT, Parcel::new()).unwrap();
        assert_eq!(reply.reader().read_i64().unwrap(), 1);
        call(&mut k, &mut rt, STOP, Parcel::new()).unwrap();
        call(&mut k, &mut rt, RELEASE, Parcel::new()).unwrap();
    }

    #[test]
    fn queue_before_start_is_invalid() {
        let (mut k, mut rt) = setup(true);
        let mut p = Parcel::new();
        p.write_blob(vec![1]);
        let err = call(&mut k, &mut rt, QUEUE_INPUT, p).unwrap_err();
        assert!(matches!(err, TransactionError::InvalidOperation(_)));
    }
}
