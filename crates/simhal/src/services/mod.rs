//! Vendor HAL service implementations.
//!
//! Each service translates Binder methods into coherent syscall sequences
//! against its kernel driver. Services that carry injected HAL crashes
//! take an `armed` flag from the device firmware.

pub mod audio;
pub mod bluetooth;
pub mod camera;
pub mod graphics;
pub mod lights;
pub mod media;
pub mod power;
pub mod sensors;
pub mod usb;
pub mod wifi;

use crate::service::KernelHandle;
use simbinder::TransactionError;
use simkernel::fd::Fd;
use simkernel::{Syscall, SyscallRet};

/// Opens `path` once and caches the descriptor in `slot`.
pub(crate) fn ensure_open(
    sys: &mut KernelHandle<'_>,
    slot: &mut Option<Fd>,
    path: &str,
) -> Result<Fd, TransactionError> {
    if let Some(fd) = *slot {
        return Ok(fd);
    }
    match sys.sys(Syscall::Openat { path: path.to_owned() }) {
        SyscallRet::NewFd(fd) => {
            *slot = Some(fd);
            Ok(fd)
        }
        SyscallRet::Err(e) => Err(TransactionError::InvalidOperation(format!(
            "open {path}: {e}"
        ))),
        _ => Err(TransactionError::InvalidOperation("open returned no fd".into())),
    }
}

/// Maps a syscall result to the scalar it produced, converting kernel
/// errors into `INVALID_OPERATION` Binder statuses.
pub(crate) fn expect_ok(ret: SyscallRet, what: &str) -> Result<u64, TransactionError> {
    match ret {
        SyscallRet::Err(e) => Err(TransactionError::InvalidOperation(format!("{what}: {e}"))),
        other => Ok(other.ok().unwrap_or(0)),
    }
}

/// Encodes `words` as an ioctl argument buffer.
pub(crate) fn words(ws: &[u32]) -> Vec<u8> {
    simkernel::driver::encode_words(ws)
}
