//! Power/Thermal HAL (`android.hardware.power@1.3::IPower/default`).

use crate::service::{HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::thermal;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: set a power-hint mode.
pub const SET_MODE: u32 = 1;
/// Method code: set a performance boost level.
pub const SET_BOOST: u32 = 2;
/// Method code: read a thermal zone's temperature.
pub const GET_TEMPERATURE: u32 = 3;

/// The power HAL service.
#[derive(Debug, Default)]
pub struct PowerHal {
    fd: Option<Fd>,
}

impl PowerHal {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HalService for PowerHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.power@1.3::IPower/default".into(),
            methods: vec![
                MethodInfo { name: "setMode".into(), code: SET_MODE, args: vec![ArgKind::Int32] },
                MethodInfo { name: "setBoost".into(), code: SET_BOOST, args: vec![ArgKind::Int32] },
                MethodInfo {
                    name: "getTemperature".into(),
                    code: GET_TEMPERATURE,
                    args: vec![ArgKind::Int32],
                },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        let fd = ensure_open(sys, &mut self.fd, "/dev/thermal")?;
        match txn.code {
            SET_MODE => {
                let mode = r.read_i32()?;
                if !(0..=4).contains(&mode) {
                    return Err(TransactionError::BadParcel("mode".into()));
                }
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: thermal::TH_SET_COOLING,
                        arg: words(&[mode as u32]),
                    }),
                    "cooling",
                )?;
                Ok(Parcel::new())
            }
            SET_BOOST => {
                let level = r.read_i32()?.clamp(0, 3) as u32;
                // Boost raises the trip point so throttling kicks in later.
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: thermal::TH_SET_TRIP,
                        arg: words(&[0, 80_000 + level * 10_000]),
                    }),
                    "trip",
                )?;
                Ok(Parcel::new())
            }
            GET_TEMPERATURE => {
                let zone = r.read_i32()?;
                if zone < 0 {
                    return Err(TransactionError::BadParcel("zone".into()));
                }
                let milli = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: thermal::TH_GET_TEMP,
                        arg: words(&[zone as u32]),
                    }),
                    "temp",
                )?;
                let mut reply = Parcel::new();
                reply.write_i32(milli as i32);
                Ok(reply)
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::Kernel;

    #[test]
    fn temperature_query_roundtrip() {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(simkernel::drivers::thermal::ThermalDevice::new()));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(PowerHal::new()));
        let desc = "android.hardware.power@1.3::IPower/default";
        let mut p = Parcel::new();
        p.write_i32(1);
        let reply = rt.transact(&mut kernel, desc, Transaction::new(GET_TEMPERATURE, p)).unwrap();
        assert!(reply.reader().read_i32().unwrap() >= 40_000);
        let mut p = Parcel::new();
        p.write_i32(2);
        rt.transact(&mut kernel, desc, Transaction::new(SET_MODE, p)).unwrap();
    }
}
