//! Sensors HAL (`android.hardware.sensors@2.1::ISensors/default`) —
//! trigger path for kernel bug #5 (calibration soft lockup).

use crate::service::{HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::sensorhub;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: activate/deactivate a sensor.
pub const ACTIVATE: u32 = 1;
/// Method code: set the batching delay.
pub const BATCH: u32 = 2;
/// Method code: flush a sensor's FIFO.
pub const FLUSH: u32 = 3;
/// Method code: run calibration (`mode`, `step`).
pub const CALIBRATE: u32 = 4;
/// Method code: poll one event.
pub const POLL: u32 = 5;

/// The sensors HAL service.
#[derive(Debug, Default)]
pub struct SensorsHal {
    fd: Option<Fd>,
}

impl SensorsHal {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HalService for SensorsHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.sensors@2.1::ISensors/default".into(),
            methods: vec![
                MethodInfo {
                    name: "activate".into(),
                    code: ACTIVATE,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo {
                    name: "batch".into(),
                    code: BATCH,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo { name: "flush".into(), code: FLUSH, args: vec![ArgKind::Int32] },
                MethodInfo {
                    name: "calibrate".into(),
                    code: CALIBRATE,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo { name: "poll".into(), code: POLL, args: vec![] },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        let fd = ensure_open(sys, &mut self.fd, "/dev/sensorhub")?;
        match txn.code {
            ACTIVATE => {
                let id = r.read_i32()?;
                let on = r.read_i32()?;
                if id < 0 || !(0..=1).contains(&on) {
                    return Err(TransactionError::BadParcel("sensor id / flag".into()));
                }
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: sensorhub::SH_ACTIVATE,
                        arg: words(&[id as u32, on as u32]),
                    }),
                    "activate",
                )?;
                Ok(Parcel::new())
            }
            BATCH => {
                let id = r.read_i32()?;
                let delay = r.read_i32()?;
                if id < 0 {
                    return Err(TransactionError::BadParcel("sensor id".into()));
                }
                let delay = delay.clamp(1_000, 1_000_000) as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: sensorhub::SH_SET_DELAY,
                        arg: words(&[id as u32, delay]),
                    }),
                    "batch",
                )?;
                Ok(Parcel::new())
            }
            FLUSH => {
                let id = r.read_i32()?;
                if id < 0 {
                    return Err(TransactionError::BadParcel("sensor id".into()));
                }
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: sensorhub::SH_FLUSH,
                        arg: words(&[id as u32]),
                    }),
                    "flush",
                )?;
                Ok(Parcel::new())
            }
            CALIBRATE => {
                let mode = r.read_i32()?;
                let step = r.read_i32()?;
                if !(1..=2).contains(&mode) || step < 0 {
                    return Err(TransactionError::BadParcel("mode/step".into()));
                }
                // step passed through unclamped: step == 0 in continuous
                // mode is the kernel's bug #5 condition.
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: sensorhub::SH_CALIBRATE,
                        arg: words(&[mode as u32, step as u32]),
                    }),
                    "calibrate",
                )?;
                Ok(Parcel::new())
            }
            POLL => {
                let seq = expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: sensorhub::SH_READ_EVENT,
                        arg: vec![],
                    }),
                    "poll",
                )?;
                let mut reply = Parcel::new();
                reply.write_i64(seq as i64);
                Ok(reply)
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::drivers::sensorhub::{SensorHubBugs, SensorHubDevice};
    use simkernel::report::BugKind;
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.sensors@2.1::ISensors/default";

    fn setup(armed: bool) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(SensorHubDevice::new(SensorHubBugs {
            calibration_lockup: armed,
        })));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(SensorsHal::new()));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, vals: &[i32]) -> TransactionResult {
        let mut p = Parcel::new();
        for &v in vals {
            p.write_i32(v);
        }
        rt.transact(k, DESC, Transaction::new(code, p))
    }

    #[test]
    fn bug5_path_continuous_zero_step_calibration() {
        let (mut k, mut rt) = setup(true);
        let _ = call(&mut k, &mut rt, CALIBRATE, &[2, 0]);
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::SoftLockup);
    }

    #[test]
    fn sensor_event_loop() {
        let (mut k, mut rt) = setup(false);
        call(&mut k, &mut rt, ACTIVATE, &[1, 1]).unwrap();
        call(&mut k, &mut rt, BATCH, &[1, 20_000]).unwrap();
        let reply = call(&mut k, &mut rt, POLL, &[]).unwrap();
        assert_eq!(reply.reader().read_i64().unwrap(), 1);
        call(&mut k, &mut rt, FLUSH, &[1]).unwrap();
        assert!(k.take_bugs().is_empty());
    }
}
