//! USB Type-C HAL (`android.hardware.usb@1.3::IUsb/default`) — trigger
//! path for kernel bugs #1 (`rt1711_i2c_probe`) and #4 (`tcpc_pr_swap`).

use crate::service::{HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::tcpc;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: read port status.
pub const QUERY_PORT_STATUS: u32 = 1;
/// Method code: simulate a cable attach (`cc`, `vbus`).
pub const SIMULATE_ATTACH: u32 = 2;
/// Method code: swap the power role.
pub const SWITCH_POWER_ROLE: u32 = 3;
/// Method code: detach the port.
pub const DETACH: u32 = 4;
/// Method code: force VBUS on/off.
pub const OVERRIDE_VBUS: u32 = 5;
/// Method code: raw vendor register access (`reg`, `len`).
pub const WRITE_VENDOR_REGISTER: u32 = 6;
/// Method code: re-run the controller probe.
pub const RECOVER_CONTROLLER: u32 = 7;

/// The USB Type-C HAL service.
#[derive(Debug, Default)]
pub struct UsbHal {
    fd: Option<Fd>,
}

impl UsbHal {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HalService for UsbHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.usb@1.3::IUsb/default".into(),
            methods: vec![
                MethodInfo { name: "queryPortStatus".into(), code: QUERY_PORT_STATUS, args: vec![] },
                MethodInfo {
                    name: "simulateAttach".into(),
                    code: SIMULATE_ATTACH,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo { name: "switchPowerRole".into(), code: SWITCH_POWER_ROLE, args: vec![] },
                MethodInfo { name: "detach".into(), code: DETACH, args: vec![] },
                MethodInfo {
                    name: "overrideVbus".into(),
                    code: OVERRIDE_VBUS,
                    args: vec![ArgKind::Int32],
                },
                MethodInfo {
                    name: "writeVendorRegister".into(),
                    code: WRITE_VENDOR_REGISTER,
                    args: vec![ArgKind::Int32, ArgKind::Int32],
                },
                MethodInfo {
                    name: "recoverController".into(),
                    code: RECOVER_CONTROLLER,
                    args: vec![],
                },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        let fd = ensure_open(sys, &mut self.fd, "/dev/tcpc0")?;
        match txn.code {
            QUERY_PORT_STATUS => {
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_GET_STATUS, arg: vec![] }),
                    "status",
                )?;
                Ok(Parcel::new())
            }
            SIMULATE_ATTACH => {
                let cc = r.read_i32()?.clamp(0, 3) as u32;
                let vbus = r.read_i32()?.clamp(0, 1) as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_SET_CC, arg: words(&[cc]) }),
                    "set cc",
                )?;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_VBUS, arg: words(&[vbus]) }),
                    "vbus",
                )?;
                let mode = if cc >= 2 { 2 } else { 1 };
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: tcpc::TCPC_ATTACH,
                        arg: words(&[mode]),
                    }),
                    "attach",
                )?;
                Ok(Parcel::new())
            }
            DETACH => {
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_DETACH, arg: vec![] }),
                    "detach",
                )?;
                Ok(Parcel::new())
            }
            SWITCH_POWER_ROLE => {
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_PR_SWAP, arg: vec![] }),
                    "pr swap",
                )?;
                Ok(Parcel::new())
            }
            OVERRIDE_VBUS => {
                let on = r.read_i32()?.clamp(0, 1) as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_VBUS, arg: words(&[on]) }),
                    "vbus",
                )?;
                Ok(Parcel::new())
            }
            WRITE_VENDOR_REGISTER => {
                let reg = r.read_i32()?;
                let len = r.read_i32()?;
                if !(0..=0xff).contains(&reg) || len < 0 {
                    return Err(TransactionError::BadParcel("register/len".into()));
                }
                // NOTE: len is passed through unclamped — a zero-length
                // transfer latches the chip's I²C error (bug #1 setup).
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: tcpc::TCPC_I2C_XFER,
                        arg: words(&[reg as u32, len as u32]),
                    }),
                    "i2c xfer",
                )?;
                Ok(Parcel::new())
            }
            RECOVER_CONTROLLER => {
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: tcpc::TCPC_RESET_PROBE, arg: vec![] }),
                    "probe",
                )?;
                Ok(Parcel::new())
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::drivers::tcpc::{TcpcBugs, TcpcDevice};
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.usb@1.3::IUsb/default";

    fn setup(bugs: TcpcBugs) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(TcpcDevice::new(bugs)));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(UsbHal::new()));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, vals: &[i32]) -> TransactionResult {
        let mut p = Parcel::new();
        for &v in vals {
            p.write_i32(v);
        }
        rt.transact(k, DESC, Transaction::new(code, p))
    }

    #[test]
    fn bug1_path_vendor_register_then_recover() {
        let (mut k, mut rt) = setup(TcpcBugs { probe_warn: true, ..Default::default() });
        let _ = call(&mut k, &mut rt, WRITE_VENDOR_REGISTER, &[0x10, 0]);
        let _ = call(&mut k, &mut rt, RECOVER_CONTROLLER, &[]);
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].title, "WARNING in rt1711_i2c_probe");
    }

    #[test]
    fn bug4_path_vbus_override_then_role_swap() {
        let (mut k, mut rt) = setup(TcpcBugs { pr_swap_warn: true, ..Default::default() });
        call(&mut k, &mut rt, OVERRIDE_VBUS, &[1]).unwrap();
        let _ = call(&mut k, &mut rt, SWITCH_POWER_ROLE, &[]);
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert!(bugs[0].title.contains("tcpc"));
    }

    #[test]
    fn attached_role_swap_is_clean() {
        let (mut k, mut rt) = setup(TcpcBugs { pr_swap_warn: true, probe_warn: true });
        call(&mut k, &mut rt, SIMULATE_ATTACH, &[1, 1]).unwrap();
        call(&mut k, &mut rt, SWITCH_POWER_ROLE, &[]).unwrap();
        call(&mut k, &mut rt, QUERY_PORT_STATUS, &[]).unwrap();
        call(&mut k, &mut rt, DETACH, &[]).unwrap();
        assert!(k.take_bugs().is_empty());
    }
}
