//! Wi-Fi HAL (`android.hardware.wifi@1.6::IWifi/default`) — trigger path
//! for kernel bug #10 (`rate_control_rate_init`).

use crate::service::{HalService, KernelHandle};
use crate::services::{ensure_open, expect_ok, words};
use simbinder::{ArgKind, InterfaceInfo, MethodInfo, Parcel, Transaction, TransactionError, TransactionResult};
use simkernel::drivers::wlan;
use simkernel::fd::Fd;
use simkernel::Syscall;

/// Method code: start a scan.
pub const START_SCAN: u32 = 1;
/// Method code: fetch scan results.
pub const GET_SCAN_RESULTS: u32 = 2;
/// Method code: override the supported-rates bitmap.
pub const SET_SUPPORTED_RATES: u32 = 3;
/// Method code: associate with AP index.
pub const CONNECT: u32 = 4;
/// Method code: disassociate.
pub const DISCONNECT: u32 = 5;
/// Method code: set power-save mode.
pub const SET_POWER_MODE: u32 = 6;

/// The Wi-Fi HAL service.
#[derive(Debug, Default)]
pub struct WifiHal {
    fd: Option<Fd>,
}

impl WifiHal {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HalService for WifiHal {
    fn info(&self) -> InterfaceInfo {
        InterfaceInfo {
            descriptor: "android.hardware.wifi@1.6::IWifi/default".into(),
            methods: vec![
                MethodInfo { name: "startScan".into(), code: START_SCAN, args: vec![] },
                MethodInfo { name: "getScanResults".into(), code: GET_SCAN_RESULTS, args: vec![] },
                MethodInfo {
                    name: "setSupportedRates".into(),
                    code: SET_SUPPORTED_RATES,
                    args: vec![ArgKind::Int32],
                },
                MethodInfo { name: "connect".into(), code: CONNECT, args: vec![ArgKind::Int32] },
                MethodInfo { name: "disconnect".into(), code: DISCONNECT, args: vec![] },
                MethodInfo {
                    name: "setPowerMode".into(),
                    code: SET_POWER_MODE,
                    args: vec![ArgKind::Int32],
                },
            ],
        }
    }

    fn on_transact(&mut self, sys: &mut KernelHandle<'_>, txn: &Transaction) -> TransactionResult {
        let mut r = txn.data.reader();
        let fd = ensure_open(sys, &mut self.fd, "/dev/wlan0")?;
        match txn.code {
            START_SCAN => {
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: wlan::WL_SCAN_START, arg: vec![] }),
                    "scan",
                )?;
                Ok(Parcel::new())
            }
            GET_SCAN_RESULTS => {
                let n = expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: wlan::WL_SCAN_RESULTS, arg: vec![] }),
                    "results",
                )?;
                let mut reply = Parcel::new();
                reply.write_i32(n as i32);
                Ok(reply)
            }
            SET_SUPPORTED_RATES => {
                let mask = r.read_i32()? as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: wlan::WL_SET_RATES,
                        arg: words(&[mask]),
                    }),
                    "set rates",
                )?;
                Ok(Parcel::new())
            }
            CONNECT => {
                let idx = r.read_i32()?;
                if idx < 0 {
                    return Err(TransactionError::BadParcel("negative ap index".into()));
                }
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: wlan::WL_CONNECT,
                        arg: words(&[idx as u32]),
                    }),
                    "connect",
                )?;
                Ok(Parcel::new())
            }
            DISCONNECT => {
                expect_ok(
                    sys.sys(Syscall::Ioctl { fd, request: wlan::WL_DISCONNECT, arg: vec![] }),
                    "disconnect",
                )?;
                Ok(Parcel::new())
            }
            SET_POWER_MODE => {
                let level = r.read_i32()?.clamp(0, 3) as u32;
                expect_ok(
                    sys.sys(Syscall::Ioctl {
                        fd,
                        request: wlan::WL_SET_POWER,
                        arg: words(&[level]),
                    }),
                    "power",
                )?;
                Ok(Parcel::new())
            }
            c => Err(TransactionError::UnknownCode(c)),
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HalRuntime;
    use simkernel::drivers::wlan::{WlanBugs, WlanDevice};
    use simkernel::Kernel;

    const DESC: &str = "android.hardware.wifi@1.6::IWifi/default";

    fn setup(armed: bool) -> (Kernel, HalRuntime) {
        let mut kernel = Kernel::new();
        kernel.register_device(Box::new(WlanDevice::new(WlanBugs { rate_init_warn: armed })));
        let mut rt = HalRuntime::new();
        rt.register(&mut kernel, Box::new(WifiHal::new()));
        (kernel, rt)
    }

    fn call(k: &mut Kernel, rt: &mut HalRuntime, code: u32, v: Option<i32>) -> TransactionResult {
        let mut p = Parcel::new();
        if let Some(v) = v {
            p.write_i32(v);
        }
        rt.transact(k, DESC, Transaction::new(code, p))
    }

    #[test]
    fn bug10_path_through_hal() {
        let (mut k, mut rt) = setup(true);
        call(&mut k, &mut rt, START_SCAN, None).unwrap();
        call(&mut k, &mut rt, GET_SCAN_RESULTS, None).unwrap();
        call(&mut k, &mut rt, SET_SUPPORTED_RATES, Some(0)).unwrap();
        let _ = call(&mut k, &mut rt, CONNECT, Some(0));
        let bugs = k.take_bugs();
        assert_eq!(bugs.len(), 1);
        assert!(bugs[0].title.contains("rate_control_rate_init"));
    }

    #[test]
    fn normal_association_cycle() {
        let (mut k, mut rt) = setup(true);
        call(&mut k, &mut rt, START_SCAN, None).unwrap();
        call(&mut k, &mut rt, GET_SCAN_RESULTS, None).unwrap();
        call(&mut k, &mut rt, CONNECT, Some(0)).unwrap();
        call(&mut k, &mut rt, DISCONNECT, None).unwrap();
        assert!(k.take_bugs().is_empty());
    }
}
