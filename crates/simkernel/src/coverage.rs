//! kcov-style coverage collection.
//!
//! Real kcov records the program counters of basic blocks executed by the
//! current task. Our drivers instead *emit* block identifiers derived from
//! their internal state (see [`crate::driver::DriverCtx::hit`]): every
//! distinct `(driver, operation, state fingerprint)` combination maps to a
//! stable [`Block`] inside the driver's reserved identifier region. Distinct
//! deep states therefore reveal distinct blocks, which is what makes coverage
//! a proxy for driver state exploration.
//!
//! [`CoverageMap`] stores covered blocks as paged bitmaps: a sorted map from
//! `block >> 16` to a 65536-bit page, so one page spans exactly one
//! [`DRIVER_REGION`]. Inserts and membership tests are shift/mask operations
//! instead of hashing, set algebra (union, difference, popcount) runs over
//! `u64` words in fixed-size chunks the compiler autovectorizes, and
//! iteration is sorted ascending. The word kernels are exported for reuse by
//! other bitmap layers (the fuzzer's signal pages use the same routines).

use std::collections::BTreeMap;
use std::fmt;

/// A coverage basic-block identifier (the simulated analogue of a kernel
/// code address recorded by kcov).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block(pub u64);

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::LowerHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Size of the block-identifier region reserved for each driver.
///
/// Real vendor drivers contain thousands to tens of thousands of basic
/// blocks; a 16-bit region per driver keeps totals in the same order of
/// magnitude as the paper's per-device kcov figures once several drivers are
/// registered.
pub const DRIVER_REGION: u64 = 1 << 16;

/// Deterministic 64-bit mixer (splitmix64 finalizer) used to fingerprint
/// driver state into a block offset.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Computes the block for `parts` within the region starting at `base`.
///
/// The same `(base, parts)` always maps to the same block, so coverage is
/// reproducible across runs and across device reboots.
pub fn block_for(base: u64, parts: &[u64]) -> Block {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        acc = mix64(acc ^ p);
    }
    Block(base + acc % DRIVER_REGION)
}

// ---------------------------------------------------------------------------
// Word kernels
//
// All bitmap set algebra in the workspace funnels through these three
// routines. They process fixed 8-word (512-bit) chunks with a plain inner
// loop — the shape LLVM autovectorizes — and fall back to a scalar tail for
// slices whose length is not a multiple of 8.
// ---------------------------------------------------------------------------

const WORD_CHUNK: usize = 8;

/// Total population count over `words`.
#[inline]
pub fn words_popcount(words: &[u64]) -> u64 {
    let mut total = 0u64;
    let chunks = words.chunks_exact(WORD_CHUNK);
    let tail = chunks.remainder();
    for chunk in chunks {
        let mut t = 0u64;
        for &w in chunk {
            t += u64::from(w.count_ones());
        }
        total += t;
    }
    for &w in tail {
        total += u64::from(w.count_ones());
    }
    total
}

/// Unions `src` into `dst` word-wise, returning how many bits were newly
/// set. Both slices must have the same length.
#[inline]
pub fn words_union_count(dst: &mut [u64], src: &[u64]) -> u64 {
    assert_eq!(dst.len(), src.len(), "word slices must match");
    let mut new = 0u64;
    let n = dst.len() / WORD_CHUNK * WORD_CHUNK;
    let (dst_head, dst_tail) = dst.split_at_mut(n);
    let (src_head, src_tail) = src.split_at(n);
    for (dc, sc) in dst_head
        .chunks_exact_mut(WORD_CHUNK)
        .zip(src_head.chunks_exact(WORD_CHUNK))
    {
        for k in 0..WORD_CHUNK {
            new += u64::from((sc[k] & !dc[k]).count_ones());
            dc[k] |= sc[k];
        }
    }
    for (d, &s) in dst_tail.iter_mut().zip(src_tail) {
        new += u64::from((s & !*d).count_ones());
        *d |= s;
    }
    new
}

/// Calls `f(word_index, new_mask)` for every word where `cov` carries bits
/// that `seen` lacks. The AND-NOT scan runs over fixed 8-word chunks and
/// `f` only fires on words that actually hold new bits, so the common
/// nothing-new case is a pure vector sweep. Both slices must have the same
/// length.
#[inline]
pub fn words_new_bits<F: FnMut(usize, u64)>(cov: &[u64], seen: &[u64], mut f: F) {
    assert_eq!(cov.len(), seen.len(), "word slices must match");
    let n = cov.len() / WORD_CHUNK * WORD_CHUNK;
    let mut idx = 0;
    while idx < n {
        let c = &cov[idx..idx + WORD_CHUNK];
        let s = &seen[idx..idx + WORD_CHUNK];
        let mut any = 0u64;
        for k in 0..WORD_CHUNK {
            any |= c[k] & !s[k];
        }
        if any != 0 {
            for k in 0..WORD_CHUNK {
                let new = c[k] & !s[k];
                if new != 0 {
                    f(idx + k, new);
                }
            }
        }
        idx += WORD_CHUNK;
    }
    for k in n..cov.len() {
        let new = cov[k] & !seen[k];
        if new != 0 {
            f(k, new);
        }
    }
}

/// A per-task kcov buffer: collects the blocks executed while enabled.
///
/// Mirrors the `KCOV_ENABLE`/`KCOV_DISABLE` usage pattern: the fuzzer
/// enables collection around each test-case execution and drains the buffer
/// afterwards.
#[derive(Debug, Clone, Default)]
pub struct KcovBuffer {
    enabled: bool,
    blocks: Vec<Block>,
}

impl KcovBuffer {
    /// Creates a disabled, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts collecting coverage; clears any previous contents.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.blocks.clear();
    }

    /// Stops collecting and returns the ordered list of blocks hit since
    /// [`enable`](Self::enable) (duplicates preserved, as with real kcov).
    pub fn disable(&mut self) -> Vec<Block> {
        self.enabled = false;
        std::mem::take(&mut self.blocks)
    }

    /// Stops collecting and appends the buffered blocks to `out`, keeping
    /// this buffer's allocation for the next enable/disable cycle. The
    /// reuse-friendly form of [`disable`](Self::disable).
    pub fn disable_into(&mut self, out: &mut Vec<Block>) {
        self.enabled = false;
        out.append(&mut self.blocks);
    }

    /// Whether the buffer is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a block if collection is enabled.
    pub fn record(&mut self, block: Block) {
        if self.enabled {
            self.blocks.push(block);
        }
    }

    /// Number of blocks currently buffered.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the buffer holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Number of block identifiers spanned by one coverage page.
pub const COV_PAGE_BLOCKS: u64 = DRIVER_REGION;

/// Right-shift that maps a block identifier to its page key.
pub const COV_PAGE_SHIFT: u32 = COV_PAGE_BLOCKS.trailing_zeros();

/// `u64` words per coverage page.
pub const COV_PAGE_WORDS: usize = (COV_PAGE_BLOCKS / 64) as usize;

static ZERO_PAGE: [u64; COV_PAGE_WORDS] = [0; COV_PAGE_WORDS];

/// One 65536-bit page of a [`CoverageMap`]: the blocks covered inside a
/// single `DRIVER_REGION`-sized identifier window, plus a maintained live
/// count so "did this page change?" is an integer compare.
#[derive(Clone)]
pub struct CovPage {
    bits: [u64; COV_PAGE_WORDS],
    live: u32,
}

impl CovPage {
    fn empty() -> Box<Self> {
        Box::new(Self {
            bits: [0; COV_PAGE_WORDS],
            live: 0,
        })
    }

    #[inline]
    fn set(&mut self, slot: u64) -> bool {
        let word = (slot >> 6) as usize;
        let mask = 1u64 << (slot & 63);
        let prev = self.bits[word];
        self.bits[word] = prev | mask;
        let new = prev & mask == 0;
        self.live += u32::from(new);
        new
    }

    #[inline]
    fn get(&self, slot: u64) -> bool {
        self.bits[(slot >> 6) as usize] & (1u64 << (slot & 63)) != 0
    }

    /// Number of covered blocks in this page.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Appends every block present in `self` but absent from `base` to
    /// `out`, in ascending identifier order. `None` means "diff against
    /// the empty page". Block identifiers are reconstructed against
    /// `page_base` (the first identifier the page spans).
    pub fn diff_into(&self, base: Option<&CovPage>, page_base: u64, out: &mut Vec<Block>) {
        let seen = base.map_or(&ZERO_PAGE, |p| &p.bits);
        words_new_bits(&self.bits, seen, |word, mut mask| {
            let word_base = page_base + (word as u64) * 64;
            while mask != 0 {
                out.push(Block(word_base + u64::from(mask.trailing_zeros())));
                mask &= mask - 1;
            }
        });
    }

    /// Unions `other` into `self`, returning how many blocks were new.
    fn union_from(&mut self, other: &CovPage) -> u64 {
        let new = words_union_count(&mut self.bits, &other.bits);
        self.live += new as u32;
        new
    }

    /// Counts covered blocks with slot in the half-open range `[lo, hi)`,
    /// `hi <= COV_PAGE_BLOCKS`.
    fn count_range(&self, lo: u64, hi: u64) -> usize {
        if lo >= hi {
            return 0;
        }
        if lo == 0 && hi == COV_PAGE_BLOCKS {
            return self.live as usize;
        }
        let mask_from = |bit: u64| !0u64 << bit;
        let mask_below = |bit: u64| {
            if bit == 0 {
                0
            } else {
                !0u64 >> (64 - bit)
            }
        };
        let (lw, lb) = ((lo >> 6) as usize, lo & 63);
        let (hw, hb) = ((hi >> 6) as usize, hi & 63);
        if lw == hw {
            return (self.bits[lw] & mask_from(lb) & mask_below(hb)).count_ones() as usize;
        }
        let mut total = (self.bits[lw] & mask_from(lb)).count_ones() as u64;
        total += words_popcount(&self.bits[lw + 1..hw]);
        if hb != 0 {
            total += u64::from((self.bits[hw] & mask_below(hb)).count_ones());
        }
        total as usize
    }
}

impl fmt::Debug for CovPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CovPage").field("live", &self.live).finish()
    }
}

/// An accumulated set of covered blocks, used by fuzzers to track global
/// progress (`Kernel` also keeps one per boot).
///
/// Stored as sorted 65536-bit pages keyed by `block >> 16`: inserts and
/// lookups are shift/mask operations, bulk union and difference run over
/// the word kernels, and [`iter`](Self::iter) yields blocks in ascending
/// identifier order.
#[derive(Clone, Default)]
pub struct CoverageMap {
    pages: BTreeMap<u64, Box<CovPage>>,
    total: usize,
}

impl CoverageMap {
    /// Creates an empty coverage map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block; returns `true` when it was not previously covered.
    #[inline]
    pub fn insert(&mut self, block: Block) -> bool {
        let page = self
            .pages
            .entry(block.0 >> COV_PAGE_SHIFT)
            .or_insert_with(CovPage::empty);
        let new = page.set(block.0 & (COV_PAGE_BLOCKS - 1));
        self.total += usize::from(new);
        new
    }

    /// Merges `blocks`, returning how many were new.
    pub fn merge<I: IntoIterator<Item = Block>>(&mut self, blocks: I) -> usize {
        blocks.into_iter().filter(|b| self.insert(*b)).count()
    }

    /// Unions an entire map into `self` page-wise (word-level, no per-block
    /// work), returning how many blocks were new.
    pub fn union_from(&mut self, other: &CoverageMap) -> usize {
        let mut new = 0u64;
        for (&key, src) in &other.pages {
            match self.pages.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    new += e.get_mut().union_from(src);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    new += u64::from(src.live);
                    e.insert(src.clone());
                }
            }
        }
        self.total += new as usize;
        new as usize
    }

    /// Whether `block` has been covered.
    #[inline]
    pub fn contains(&self, block: Block) -> bool {
        self.pages
            .get(&(block.0 >> COV_PAGE_SHIFT))
            .is_some_and(|p| p.get(block.0 & (COV_PAGE_BLOCKS - 1)))
    }

    /// Total number of distinct blocks covered.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no blocks are covered.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates over covered blocks in ascending identifier order.
    pub fn iter(&self) -> impl Iterator<Item = Block> + '_ {
        self.pages.iter().flat_map(|(&key, page)| {
            let base = key << COV_PAGE_SHIFT;
            page.bits.iter().enumerate().flat_map(move |(w, &word)| BitIter {
                word,
                base: base + (w as u64) * 64,
            })
        })
    }

    /// The page holding blocks `[key << 16, (key + 1) << 16)`, if any block
    /// in that window is covered.
    pub fn page(&self, key: u64) -> Option<&CovPage> {
        self.pages.get(&key).map(|b| &**b)
    }

    /// Iterates `(page_key, page)` pairs in ascending key order. Together
    /// with [`CovPage::live`] this lets delta consumers skip pages whose
    /// live count has not moved since their last scan.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &CovPage)> {
        self.pages.iter().map(|(&k, p)| (k, &**p))
    }

    /// Counts covered blocks in the half-open identifier range
    /// `[base, base + DRIVER_REGION)`, i.e. per-driver coverage.
    pub fn count_in_region(&self, base: u64) -> usize {
        let end = base + DRIVER_REGION;
        let first_key = base >> COV_PAGE_SHIFT;
        let last_key = (end - 1) >> COV_PAGE_SHIFT;
        let mut total = 0;
        for (&key, page) in self.pages.range(first_key..=last_key) {
            let page_base = key << COV_PAGE_SHIFT;
            let lo = base.max(page_base) - page_base;
            let hi = end.min(page_base + COV_PAGE_BLOCKS) - page_base;
            total += page.count_range(lo, hi);
        }
        total
    }
}

impl fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoverageMap")
            .field("blocks", &self.total)
            .field("pages", &self.pages.len())
            .finish()
    }
}

struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        if self.word == 0 {
            return None;
        }
        let bit = u64::from(self.word.trailing_zeros());
        self.word &= self.word - 1;
        Some(Block(self.base + bit))
    }
}

impl Extend<Block> for CoverageMap {
    fn extend<I: IntoIterator<Item = Block>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl FromIterator<Block> for CoverageMap {
    fn from_iter<I: IntoIterator<Item = Block>>(iter: I) -> Self {
        let mut map = Self::new();
        map.extend(iter);
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn block_for_is_deterministic() {
        let a = block_for(0x1000_0000, &[1, 2, 3]);
        let b = block_for(0x1000_0000, &[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_for_stays_in_region() {
        for i in 0..1000 {
            let b = block_for(0x2000_0000, &[i, i * 7, 42]);
            assert!(b.0 >= 0x2000_0000 && b.0 < 0x2000_0000 + DRIVER_REGION);
        }
    }

    #[test]
    fn block_for_distinguishes_state() {
        let a = block_for(0, &[1, 2]);
        let b = block_for(0, &[2, 1]);
        assert_ne!(a, b, "order of state parts must matter");
    }

    #[test]
    fn kcov_records_only_when_enabled() {
        let mut kcov = KcovBuffer::new();
        kcov.record(Block(1));
        assert!(kcov.is_empty());
        kcov.enable();
        kcov.record(Block(2));
        kcov.record(Block(2));
        let got = kcov.disable();
        assert_eq!(got, vec![Block(2), Block(2)], "duplicates preserved");
        kcov.record(Block(3));
        assert!(kcov.is_empty());
    }

    #[test]
    fn enable_clears_previous_contents() {
        let mut kcov = KcovBuffer::new();
        kcov.enable();
        kcov.record(Block(7));
        kcov.enable();
        assert!(kcov.is_empty());
    }

    #[test]
    fn disable_into_appends_and_keeps_buffer_reusable() {
        let mut kcov = KcovBuffer::new();
        let mut out = vec![Block(1)];
        kcov.enable();
        kcov.record(Block(2));
        kcov.record(Block(3));
        kcov.disable_into(&mut out);
        assert_eq!(out, vec![Block(1), Block(2), Block(3)]);
        assert!(kcov.is_empty());
        assert!(!kcov.is_enabled());
        kcov.enable();
        kcov.record(Block(9));
        assert_eq!(kcov.disable(), vec![Block(9)]);
    }

    #[test]
    fn coverage_map_merge_counts_new() {
        let mut map = CoverageMap::new();
        assert_eq!(map.merge([Block(1), Block(2), Block(1)]), 2);
        assert_eq!(map.merge([Block(2), Block(3)]), 1);
        assert_eq!(map.len(), 3);
        assert!(map.contains(Block(3)));
    }

    #[test]
    fn count_in_region_filters() {
        let map: CoverageMap = [Block(10), Block(DRIVER_REGION + 5), Block(20)]
            .into_iter()
            .collect();
        assert_eq!(map.count_in_region(0), 2);
        assert_eq!(map.count_in_region(DRIVER_REGION), 1);
    }

    /// Deterministic pseudo-random block stream spread over several pages,
    /// including page boundaries.
    fn scatter(n: u64) -> impl Iterator<Item = Block> {
        (0..n).map(|i| {
            let x = mix64(i.wrapping_mul(0x9e37_79b9));
            Block((x % (5 * DRIVER_REGION)) + 0x1000_0000)
        })
    }

    #[test]
    fn bitmap_map_matches_hashset_reference() {
        let mut map = CoverageMap::new();
        let mut reference: HashSet<Block> = HashSet::new();
        for b in scatter(10_000) {
            assert_eq!(map.insert(b), reference.insert(b), "insert verdict for {b}");
        }
        assert_eq!(map.len(), reference.len());
        for b in scatter(10_000) {
            assert!(map.contains(b));
        }
        assert!(!map.contains(Block(0)));
        let got: Vec<Block> = map.iter().collect();
        let mut want: Vec<Block> = reference.iter().copied().collect();
        want.sort_unstable();
        assert_eq!(got, want, "iteration is sorted and complete");
        for base in [0, 0x1000_0000, 0x1000_0000 + DRIVER_REGION, 0x1001_8000] {
            let want = reference
                .iter()
                .filter(|b| b.0 >= base && b.0 < base + DRIVER_REGION)
                .count();
            assert_eq!(map.count_in_region(base), want, "region base 0x{base:x}");
        }
    }

    #[test]
    fn union_from_counts_new_blocks() {
        let mut a: CoverageMap = scatter(400).collect();
        let b: CoverageMap = scatter(800).collect();
        let before = a.len();
        let new = a.union_from(&b);
        assert_eq!(a.len(), before + new);
        assert_eq!(a.len(), b.len(), "scatter(400) is a prefix of scatter(800)");
        assert_eq!(a.union_from(&b), 0, "second union finds nothing new");
        let got: Vec<Block> = a.iter().collect();
        let want: Vec<Block> = b.iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn page_diff_into_matches_set_difference() {
        let seen: CoverageMap = scatter(300).collect();
        let cov: CoverageMap = scatter(600).collect();
        let mut out = Vec::new();
        for (key, page) in cov.pages() {
            page.diff_into(seen.page(key), key << COV_PAGE_SHIFT, &mut out);
        }
        let seen_set: HashSet<Block> = seen.iter().collect();
        let mut want: Vec<Block> = cov.iter().filter(|b| !seen_set.contains(b)).collect();
        want.sort_unstable();
        // Per-page appends are already globally sorted: pages ascend.
        assert_eq!(out, want);
        // Diff against nothing yields the whole page.
        let mut all = Vec::new();
        for (key, page) in cov.pages() {
            page.diff_into(None, key << COV_PAGE_SHIFT, &mut all);
        }
        assert_eq!(all.len(), cov.len());
    }

    #[test]
    fn word_kernels_agree_with_scalar_reference() {
        // Lengths chosen to exercise both the chunked body and the tail.
        for len in [0usize, 1, 7, 8, 9, 64, 67] {
            let a: Vec<u64> = (0..len as u64).map(mix64).collect();
            let b: Vec<u64> = (0..len as u64).map(|i| mix64(i ^ 0xABCD)).collect();
            let want_pop: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(words_popcount(&a), want_pop);

            let mut dst = a.clone();
            let new = words_union_count(&mut dst, &b);
            let want_new: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| u64::from((y & !x).count_ones()))
                .sum();
            assert_eq!(new, want_new);
            assert!(dst.iter().zip(a.iter().zip(&b)).all(|(d, (x, y))| *d == x | y));

            let mut got = Vec::new();
            words_new_bits(&b, &a, |idx, mask| got.push((idx, mask)));
            let want: Vec<(usize, u64)> = a
                .iter()
                .zip(&b)
                .enumerate()
                .filter_map(|(i, (x, y))| {
                    let m = y & !x;
                    (m != 0).then_some((i, m))
                })
                .collect();
            assert_eq!(got, want);
        }
    }
}
