//! kcov-style coverage collection.
//!
//! Real kcov records the program counters of basic blocks executed by the
//! current task. Our drivers instead *emit* block identifiers derived from
//! their internal state (see [`crate::driver::DriverCtx::hit`]): every
//! distinct `(driver, operation, state fingerprint)` combination maps to a
//! stable [`Block`] inside the driver's reserved identifier region. Distinct
//! deep states therefore reveal distinct blocks, which is what makes coverage
//! a proxy for driver state exploration.

use std::collections::HashSet;
use std::fmt;

/// A coverage basic-block identifier (the simulated analogue of a kernel
/// code address recorded by kcov).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block(pub u64);

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::LowerHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Size of the block-identifier region reserved for each driver.
///
/// Real vendor drivers contain thousands to tens of thousands of basic
/// blocks; a 16-bit region per driver keeps totals in the same order of
/// magnitude as the paper's per-device kcov figures once several drivers are
/// registered.
pub const DRIVER_REGION: u64 = 1 << 16;

/// Deterministic 64-bit mixer (splitmix64 finalizer) used to fingerprint
/// driver state into a block offset.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Computes the block for `parts` within the region starting at `base`.
///
/// The same `(base, parts)` always maps to the same block, so coverage is
/// reproducible across runs and across device reboots.
pub fn block_for(base: u64, parts: &[u64]) -> Block {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        acc = mix64(acc ^ p);
    }
    Block(base + acc % DRIVER_REGION)
}

/// A per-task kcov buffer: collects the blocks executed while enabled.
///
/// Mirrors the `KCOV_ENABLE`/`KCOV_DISABLE` usage pattern: the fuzzer
/// enables collection around each test-case execution and drains the buffer
/// afterwards.
#[derive(Debug, Clone, Default)]
pub struct KcovBuffer {
    enabled: bool,
    blocks: Vec<Block>,
}

impl KcovBuffer {
    /// Creates a disabled, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts collecting coverage; clears any previous contents.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.blocks.clear();
    }

    /// Stops collecting and returns the ordered list of blocks hit since
    /// [`enable`](Self::enable) (duplicates preserved, as with real kcov).
    pub fn disable(&mut self) -> Vec<Block> {
        self.enabled = false;
        std::mem::take(&mut self.blocks)
    }

    /// Whether the buffer is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a block if collection is enabled.
    pub fn record(&mut self, block: Block) {
        if self.enabled {
            self.blocks.push(block);
        }
    }

    /// Number of blocks currently buffered.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the buffer holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// An accumulated set of covered blocks, used by fuzzers to track global
/// progress (`Kernel` also keeps one per boot).
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    blocks: HashSet<Block>,
}

impl CoverageMap {
    /// Creates an empty coverage map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block; returns `true` when it was not previously covered.
    pub fn insert(&mut self, block: Block) -> bool {
        self.blocks.insert(block)
    }

    /// Merges `blocks`, returning how many were new.
    pub fn merge<I: IntoIterator<Item = Block>>(&mut self, blocks: I) -> usize {
        blocks.into_iter().filter(|b| self.blocks.insert(*b)).count()
    }

    /// Whether `block` has been covered.
    pub fn contains(&self, block: Block) -> bool {
        self.blocks.contains(&block)
    }

    /// Total number of distinct blocks covered.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks are covered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over covered blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Counts covered blocks in the half-open identifier range
    /// `[base, base + DRIVER_REGION)`, i.e. per-driver coverage.
    pub fn count_in_region(&self, base: u64) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.0 >= base && b.0 < base + DRIVER_REGION)
            .count()
    }
}

impl Extend<Block> for CoverageMap {
    fn extend<I: IntoIterator<Item = Block>>(&mut self, iter: I) {
        self.blocks.extend(iter);
    }
}

impl FromIterator<Block> for CoverageMap {
    fn from_iter<I: IntoIterator<Item = Block>>(iter: I) -> Self {
        Self {
            blocks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_for_is_deterministic() {
        let a = block_for(0x1000_0000, &[1, 2, 3]);
        let b = block_for(0x1000_0000, &[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_for_stays_in_region() {
        for i in 0..1000 {
            let b = block_for(0x2000_0000, &[i, i * 7, 42]);
            assert!(b.0 >= 0x2000_0000 && b.0 < 0x2000_0000 + DRIVER_REGION);
        }
    }

    #[test]
    fn block_for_distinguishes_state() {
        let a = block_for(0, &[1, 2]);
        let b = block_for(0, &[2, 1]);
        assert_ne!(a, b, "order of state parts must matter");
    }

    #[test]
    fn kcov_records_only_when_enabled() {
        let mut kcov = KcovBuffer::new();
        kcov.record(Block(1));
        assert!(kcov.is_empty());
        kcov.enable();
        kcov.record(Block(2));
        kcov.record(Block(2));
        let got = kcov.disable();
        assert_eq!(got, vec![Block(2), Block(2)], "duplicates preserved");
        kcov.record(Block(3));
        assert!(kcov.is_empty());
    }

    #[test]
    fn enable_clears_previous_contents() {
        let mut kcov = KcovBuffer::new();
        kcov.enable();
        kcov.record(Block(7));
        kcov.enable();
        assert!(kcov.is_empty());
    }

    #[test]
    fn coverage_map_merge_counts_new() {
        let mut map = CoverageMap::new();
        assert_eq!(map.merge([Block(1), Block(2), Block(1)]), 2);
        assert_eq!(map.merge([Block(2), Block(3)]), 1);
        assert_eq!(map.len(), 3);
        assert!(map.contains(Block(3)));
    }

    #[test]
    fn count_in_region_filters() {
        let map: CoverageMap = [Block(10), Block(DRIVER_REGION + 5), Block(20)]
            .into_iter()
            .collect();
        assert_eq!(map.count_in_region(0), 2);
        assert_eq!(map.count_in_region(DRIVER_REGION), 1);
    }
}
