//! The character-driver framework: the trait vendor drivers implement, the
//! execution context handed to them, and the self-description metadata the
//! fuzzer turns into syscall descriptions (standing in for syzkaller's
//! hand-written syzlang files, which DroidFuzz borrows).

use crate::coverage::{block_for, CoverageMap, KcovBuffer};
use crate::errno::Errno;
use crate::report::{BugKind, BugReport, BugSink, Component};

/// Loop budget charged by [`DriverCtx::spin`]; exceeding it fires the
/// soft-lockup watchdog, modelling `watchdog: BUG: soft lockup`.
pub const WATCHDOG_BUDGET: u64 = 10_000;

/// Execution context passed to driver entry points.
///
/// Carries the coverage recorders, the bug sink, and the watchdog budget for
/// this syscall. Drivers report state fingerprints through [`hit`], raise
/// injected defects through the `warn`/`kasan_*`/`bug_msg` helpers, and
/// charge loop iterations through [`spin`].
///
/// [`hit`]: DriverCtx::hit
/// [`spin`]: DriverCtx::spin
#[derive(Debug)]
pub struct DriverCtx<'a> {
    /// Coverage-region base of the driver being executed.
    base: u64,
    /// Short driver name for watchdog reports.
    driver: &'a str,
    kcov: Option<&'a mut KcovBuffer>,
    global: &'a mut CoverageMap,
    bugs: &'a mut BugSink,
    budget: u64,
    /// Identity of the open file this call arrived through; lets drivers
    /// keep per-open state.
    pub open_id: u64,
}

impl<'a> DriverCtx<'a> {
    /// Builds a context. Used by the kernel dispatcher and by tests that
    /// poke drivers directly.
    pub fn new(
        base: u64,
        driver: &'a str,
        kcov: Option<&'a mut KcovBuffer>,
        global: &'a mut CoverageMap,
        bugs: &'a mut BugSink,
        open_id: u64,
    ) -> Self {
        Self {
            base,
            driver,
            kcov,
            global,
            bugs,
            budget: WATCHDOG_BUDGET,
            open_id,
        }
    }

    /// Records the basic block identified by the state fingerprint `parts`
    /// (operation code, state-machine fields, branch tags, …).
    pub fn hit(&mut self, parts: &[u64]) {
        self.hit_raw(block_for(self.base, parts));
    }

    /// Records a *path* of `weight` related blocks for the state
    /// fingerprint `parts`. Deep, state-gated driver paths execute many
    /// basic blocks; shallow queries and error returns execute few — this
    /// is what makes kernel coverage reward stateful exploration over
    /// argument spraying.
    pub fn hit_path(&mut self, weight: u64, parts: &[u64]) {
        for i in 0..weight.max(1) {
            let mut fp = Vec::with_capacity(parts.len() + 1);
            fp.extend_from_slice(parts);
            fp.push(0xBB00 + i);
            self.hit(&fp);
        }
    }

    /// Records a precomputed block (for stacks like Bluetooth that span
    /// multiple coverage regions and compute their own blocks).
    pub fn hit_raw(&mut self, block: crate::coverage::Block) {
        if let Some(kcov) = self.kcov.as_deref_mut() {
            kcov.record(block);
        }
        self.global.insert(block);
    }

    /// Raises a `WARNING in <site>` report (recoverable logic error).
    pub fn warn(&mut self, site: &str) {
        self.bugs
            .push(BugReport::at_site(BugKind::Warning, site, Component::KernelDriver));
    }

    /// Raises a `WARNING in <site>` attributed to a shared kernel subsystem.
    pub fn warn_subsystem(&mut self, site: &str) {
        self.bugs.push(BugReport::at_site(
            BugKind::Warning,
            site,
            Component::KernelSubsystem,
        ));
    }

    /// Raises a verbatim `BUG:`-style report attributed to a subsystem.
    pub fn bug_msg(&mut self, title: &str) {
        self.bugs.push(BugReport::with_title(
            BugKind::Bug,
            title,
            Component::KernelSubsystem,
        ));
    }

    /// Raises `KASAN: slab-use-after-free Read in <site>`.
    pub fn kasan_uaf(&mut self, site: &str) {
        self.bugs.push(BugReport::at_site(
            BugKind::KasanUseAfterFree,
            site,
            Component::KernelDriver,
        ));
    }

    /// Raises `KASAN: invalid-access in <site>`.
    pub fn kasan_invalid(&mut self, site: &str) {
        self.bugs.push(BugReport::at_site(
            BugKind::KasanInvalidAccess,
            site,
            Component::KernelDriver,
        ));
    }

    /// Charges `n` loop iterations against the watchdog budget. Returns
    /// `false` — after raising a soft-lockup report — once the budget is
    /// exhausted; the driver must then bail out of its loop.
    pub fn spin(&mut self, n: u64) -> bool {
        if self.budget <= n {
            self.budget = 0;
            self.bugs.push(BugReport::with_title(
                BugKind::SoftLockup,
                format!("Infinite Loop in driver {}", self.driver),
                Component::KernelDriver,
            ));
            false
        } else {
            self.budget -= n;
            true
        }
    }

    /// Remaining watchdog budget (mostly for tests).
    pub fn budget_left(&self) -> u64 {
        self.budget
    }
}

/// Result of a successful `ioctl`: a scalar or an out-buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoctlOut {
    /// Scalar return (often 0).
    Val(u64),
    /// Data copied back to userspace.
    Out(Vec<u8>),
}

/// A character device driver bound to a devfs node.
///
/// All entry points receive a [`DriverCtx`] for coverage/bug reporting.
/// Default implementations return `EOPNOTSUPP`/`ENOTTY` like a real driver
/// with unimplemented file operations.
pub trait CharDevice: Send {
    /// Short driver name (e.g. `"tcpc"`), used in logs and per-driver
    /// coverage accounting.
    fn name(&self) -> &str;

    /// The `/dev/...` node this driver is mounted at.
    fn node(&self) -> String;

    /// Machine-readable interface description, the stand-in for the
    /// syzlang descriptions DroidFuzz borrows from syzkaller.
    fn api(&self) -> DriverApi;

    /// `open(2)` on the node. `ctx.open_id` identifies the new open file.
    fn open(&mut self, ctx: &mut DriverCtx<'_>) -> Result<(), Errno> {
        ctx.hit(&[0x10]);
        Ok(())
    }

    /// Last close of an open file.
    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
    }

    /// `read(2)`.
    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        let _ = (ctx, len);
        Err(Errno::EOPNOTSUPP)
    }

    /// `write(2)`.
    fn write(&mut self, ctx: &mut DriverCtx<'_>, data: &[u8]) -> Result<usize, Errno> {
        let _ = (ctx, data);
        Err(Errno::EOPNOTSUPP)
    }

    /// `ioctl(2)`.
    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let _ = (ctx, request, arg);
        Err(Errno::ENOTTY)
    }

    /// `mmap(2)`.
    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        let _ = (ctx, len, prot);
        Err(Errno::ENODEV)
    }

    /// `poll(2)`; returns the ready-event mask.
    fn poll(&mut self, ctx: &mut DriverCtx<'_>, events: u32) -> Result<u32, Errno> {
        ctx.hit(&[0x12, u64::from(events)]);
        Ok(0)
    }
}

/// Shape of one 32-bit word inside an ioctl argument structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordShape {
    /// Any value in `[min, max]`.
    Range {
        /// Inclusive lower bound.
        min: u32,
        /// Inclusive upper bound.
        max: u32,
    },
    /// One of an enumerated set of meaningful values.
    Choice(Vec<u32>),
    /// A bitwise OR of a subset of these flags.
    Flags(Vec<u32>),
    /// Uninterpreted word.
    Any,
}

/// Description of one ioctl command: name, request code, and the word-wise
/// shape of its argument structure (arguments here are sequences of
/// little-endian `u32` words, optionally followed by a raw byte payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoctlDesc {
    /// Symbolic command name (e.g. `"VIDIOC_S_FMT"`).
    pub name: String,
    /// Request code passed as the `ioctl` second argument.
    pub request: u32,
    /// Shapes of the leading argument words.
    pub words: Vec<WordShape>,
    /// Maximum trailing payload bytes (0 = none).
    pub trailing_bytes: usize,
}

impl IoctlDesc {
    /// Convenience constructor for an ioctl without argument payload.
    pub fn bare(name: &str, request: u32) -> Self {
        Self {
            name: name.to_owned(),
            request,
            words: Vec::new(),
            trailing_bytes: 0,
        }
    }

    /// Convenience constructor for an ioctl taking `words` and no blob.
    pub fn with_words(name: &str, request: u32, words: Vec<WordShape>) -> Self {
        Self {
            name: name.to_owned(),
            request,
            words,
            trailing_bytes: 0,
        }
    }
}

/// Self-description of a driver's syscall surface.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DriverApi {
    /// Supported ioctl commands.
    pub ioctls: Vec<IoctlDesc>,
    /// Whether `read(2)` does something useful.
    pub supports_read: bool,
    /// Whether `write(2)` does something useful.
    pub supports_write: bool,
    /// Whether `mmap(2)` does something useful.
    pub supports_mmap: bool,
    /// Whether this is a proprietary vendor driver. Upstream interfaces
    /// (V4L2, DRM, ALSA, evdev, …) have public syzlang descriptions;
    /// vendor drivers do not — a syscall fuzzer only sees an opaque
    /// ioctl surface for them, while their interface knowledge lives in
    /// the (closed-source) HAL. This asymmetry is the core premise of
    /// the DroidFuzz paper.
    pub vendor: bool,
}

/// Reads little-endian word `i` of an ioctl argument, 0 when out of range
/// (mirrors a kernel copying a short user buffer padded with zeroes).
pub fn word(arg: &[u8], i: usize) -> u32 {
    let off = i * 4;
    if off + 4 <= arg.len() {
        u32::from_le_bytes([arg[off], arg[off + 1], arg[off + 2], arg[off + 3]])
    } else if off < arg.len() {
        let mut buf = [0u8; 4];
        buf[..arg.len() - off].copy_from_slice(&arg[off..]);
        u32::from_le_bytes(buf)
    } else {
        0
    }
}

/// Encodes words into a little-endian byte buffer (the inverse of [`word`]).
pub fn encode_words(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_decoding_handles_short_buffers() {
        let buf = encode_words(&[0xdead_beef, 0x1234_5678]);
        assert_eq!(word(&buf, 0), 0xdead_beef);
        assert_eq!(word(&buf, 1), 0x1234_5678);
        assert_eq!(word(&buf, 2), 0);
        assert_eq!(word(&buf[..6], 1), 0x5678);
    }

    #[test]
    fn ctx_hit_records_to_kcov_and_global() {
        let mut kcov = KcovBuffer::new();
        kcov.enable();
        let mut global = CoverageMap::new();
        let mut bugs = BugSink::new();
        let mut ctx = DriverCtx::new(0x100, "t", Some(&mut kcov), &mut global, &mut bugs, 1);
        ctx.hit(&[1, 2]);
        ctx.hit(&[1, 2]);
        ctx.hit(&[3]);
        assert_eq!(kcov.len(), 3, "kcov keeps duplicates");
        assert_eq!(global.len(), 2, "global map deduplicates");
    }

    #[test]
    fn ctx_spin_fires_watchdog_once_budget_exhausted() {
        let mut global = CoverageMap::new();
        let mut bugs = BugSink::new();
        let mut ctx = DriverCtx::new(0, "sensorhub", None, &mut global, &mut bugs, 1);
        assert!(ctx.spin(WATCHDOG_BUDGET - 1));
        assert!(!ctx.spin(10));
        let reports = bugs.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::SoftLockup);
        assert!(reports[0].title.contains("sensorhub"));
    }

    #[test]
    fn ctx_bug_helpers_classify_components() {
        let mut global = CoverageMap::new();
        let mut bugs = BugSink::new();
        let mut ctx = DriverCtx::new(0, "d", None, &mut global, &mut bugs, 1);
        ctx.warn("a");
        ctx.warn_subsystem("b");
        ctx.kasan_uaf("c");
        ctx.kasan_invalid("d");
        ctx.bug_msg("BUG: looking up invalid subclass: 8");
        let reports = bugs.take();
        assert_eq!(reports[0].component, Component::KernelDriver);
        assert_eq!(reports[1].component, Component::KernelSubsystem);
        assert_eq!(reports[2].kind, BugKind::KasanUseAfterFree);
        assert_eq!(reports[3].kind, BugKind::KasanInvalidAccess);
        assert_eq!(reports[4].kind, BugKind::Bug);
    }
}
