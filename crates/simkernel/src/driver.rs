//! The character-driver framework: the trait vendor drivers implement, the
//! execution context handed to them, and the self-description metadata the
//! fuzzer turns into syscall descriptions (standing in for syzkaller's
//! hand-written syzlang files, which DroidFuzz borrows).

use crate::coverage::{block_for, CoverageMap, KcovBuffer};
use crate::errno::Errno;
use crate::report::{BugKind, BugReport, BugSink, Component};

/// Loop budget charged by [`DriverCtx::spin`]; exceeding it fires the
/// soft-lockup watchdog, modelling `watchdog: BUG: soft lockup`.
pub const WATCHDOG_BUDGET: u64 = 10_000;

/// Execution context passed to driver entry points.
///
/// Carries the coverage recorders, the bug sink, and the watchdog budget for
/// this syscall. Drivers report state fingerprints through [`hit`], raise
/// injected defects through the `warn`/`kasan_*`/`bug_msg` helpers, and
/// charge loop iterations through [`spin`].
///
/// [`hit`]: DriverCtx::hit
/// [`spin`]: DriverCtx::spin
#[derive(Debug)]
pub struct DriverCtx<'a> {
    /// Coverage-region base of the driver being executed.
    base: u64,
    /// Short driver name for watchdog reports.
    driver: &'a str,
    kcov: Option<&'a mut KcovBuffer>,
    global: &'a mut CoverageMap,
    bugs: &'a mut BugSink,
    budget: u64,
    /// Identity of the open file this call arrived through; lets drivers
    /// keep per-open state.
    pub open_id: u64,
}

impl<'a> DriverCtx<'a> {
    /// Builds a context. Used by the kernel dispatcher and by tests that
    /// poke drivers directly.
    pub fn new(
        base: u64,
        driver: &'a str,
        kcov: Option<&'a mut KcovBuffer>,
        global: &'a mut CoverageMap,
        bugs: &'a mut BugSink,
        open_id: u64,
    ) -> Self {
        Self {
            base,
            driver,
            kcov,
            global,
            bugs,
            budget: WATCHDOG_BUDGET,
            open_id,
        }
    }

    /// Records the basic block identified by the state fingerprint `parts`
    /// (operation code, state-machine fields, branch tags, …).
    pub fn hit(&mut self, parts: &[u64]) {
        self.hit_raw(block_for(self.base, parts));
    }

    /// Records a *path* of `weight` related blocks for the state
    /// fingerprint `parts`. Deep, state-gated driver paths execute many
    /// basic blocks; shallow queries and error returns execute few — this
    /// is what makes kernel coverage reward stateful exploration over
    /// argument spraying.
    pub fn hit_path(&mut self, weight: u64, parts: &[u64]) {
        // Fingerprints are short (opcode + a few state fields); build them
        // in a stack buffer so the per-block hot loop never touches the
        // heap. The spill path keeps arbitrary lengths correct.
        let mut stack = [0u64; 16];
        let mut heap;
        let fp: &mut [u64] = if parts.len() < stack.len() {
            &mut stack[..parts.len() + 1]
        } else {
            heap = vec![0u64; parts.len() + 1];
            &mut heap
        };
        fp[..parts.len()].copy_from_slice(parts);
        for i in 0..weight.max(1) {
            fp[parts.len()] = 0xBB00 + i;
            self.hit_raw(block_for(self.base, fp));
        }
    }

    /// Records a precomputed block (for stacks like Bluetooth that span
    /// multiple coverage regions and compute their own blocks).
    pub fn hit_raw(&mut self, block: crate::coverage::Block) {
        if let Some(kcov) = self.kcov.as_deref_mut() {
            kcov.record(block);
        }
        self.global.insert(block);
    }

    /// Raises a `WARNING in <site>` report (recoverable logic error).
    pub fn warn(&mut self, site: &str) {
        self.bugs
            .push(BugReport::at_site(BugKind::Warning, site, Component::KernelDriver));
    }

    /// Raises a `WARNING in <site>` attributed to a shared kernel subsystem.
    pub fn warn_subsystem(&mut self, site: &str) {
        self.bugs.push(BugReport::at_site(
            BugKind::Warning,
            site,
            Component::KernelSubsystem,
        ));
    }

    /// Raises a verbatim `BUG:`-style report attributed to a subsystem.
    pub fn bug_msg(&mut self, title: &str) {
        self.bugs.push(BugReport::with_title(
            BugKind::Bug,
            title,
            Component::KernelSubsystem,
        ));
    }

    /// Raises `KASAN: slab-use-after-free Read in <site>`.
    pub fn kasan_uaf(&mut self, site: &str) {
        self.bugs.push(BugReport::at_site(
            BugKind::KasanUseAfterFree,
            site,
            Component::KernelDriver,
        ));
    }

    /// Raises `KASAN: invalid-access in <site>`.
    pub fn kasan_invalid(&mut self, site: &str) {
        self.bugs.push(BugReport::at_site(
            BugKind::KasanInvalidAccess,
            site,
            Component::KernelDriver,
        ));
    }

    /// Charges `n` loop iterations against the watchdog budget. Returns
    /// `false` — after raising a soft-lockup report — once the budget is
    /// exhausted; the driver must then bail out of its loop.
    pub fn spin(&mut self, n: u64) -> bool {
        if self.budget <= n {
            self.budget = 0;
            self.bugs.push(BugReport::with_title(
                BugKind::SoftLockup,
                format!("Infinite Loop in driver {}", self.driver),
                Component::KernelDriver,
            ));
            false
        } else {
            self.budget -= n;
            true
        }
    }

    /// Remaining watchdog budget (mostly for tests).
    pub fn budget_left(&self) -> u64 {
        self.budget
    }
}

/// Result of a successful `ioctl`: a scalar or an out-buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoctlOut {
    /// Scalar return (often 0).
    Val(u64),
    /// Data copied back to userspace.
    Out(Vec<u8>),
}

/// A character device driver bound to a devfs node.
///
/// All entry points receive a [`DriverCtx`] for coverage/bug reporting.
/// Default implementations return `EOPNOTSUPP`/`ENOTTY` like a real driver
/// with unimplemented file operations.
pub trait CharDevice: Send {
    /// Short driver name (e.g. `"tcpc"`), used in logs and per-driver
    /// coverage accounting.
    fn name(&self) -> &str;

    /// The `/dev/...` node this driver is mounted at.
    fn node(&self) -> String;

    /// Machine-readable interface description, the stand-in for the
    /// syzlang descriptions DroidFuzz borrows from syzkaller.
    fn api(&self) -> DriverApi;

    /// `open(2)` on the node. `ctx.open_id` identifies the new open file.
    fn open(&mut self, ctx: &mut DriverCtx<'_>) -> Result<(), Errno> {
        ctx.hit(&[0x10]);
        Ok(())
    }

    /// Last close of an open file.
    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
    }

    /// `read(2)`.
    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        let _ = (ctx, len);
        Err(Errno::EOPNOTSUPP)
    }

    /// `write(2)`.
    fn write(&mut self, ctx: &mut DriverCtx<'_>, data: &[u8]) -> Result<usize, Errno> {
        let _ = (ctx, data);
        Err(Errno::EOPNOTSUPP)
    }

    /// `ioctl(2)`.
    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let _ = (ctx, request, arg);
        Err(Errno::ENOTTY)
    }

    /// `mmap(2)`.
    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        let _ = (ctx, len, prot);
        Err(Errno::ENODEV)
    }

    /// `poll(2)`; returns the ready-event mask.
    fn poll(&mut self, ctx: &mut DriverCtx<'_>, events: u32) -> Result<u32, Errno> {
        ctx.hit(&[0x12, u64::from(events)]);
        Ok(0)
    }
}

/// Shape of one 32-bit word inside an ioctl argument structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordShape {
    /// Any value in `[min, max]`.
    Range {
        /// Inclusive lower bound.
        min: u32,
        /// Inclusive upper bound.
        max: u32,
    },
    /// One of an enumerated set of meaningful values.
    Choice(Vec<u32>),
    /// A bitwise OR of a subset of these flags.
    Flags(Vec<u32>),
    /// Uninterpreted word.
    Any,
}

/// Description of one ioctl command: name, request code, and the word-wise
/// shape of its argument structure (arguments here are sequences of
/// little-endian `u32` words, optionally followed by a raw byte payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoctlDesc {
    /// Symbolic command name (e.g. `"VIDIOC_S_FMT"`).
    pub name: String,
    /// Request code passed as the `ioctl` second argument.
    pub request: u32,
    /// Shapes of the leading argument words.
    pub words: Vec<WordShape>,
    /// Maximum trailing payload bytes (0 = none).
    pub trailing_bytes: usize,
}

impl IoctlDesc {
    /// Convenience constructor for an ioctl without argument payload.
    pub fn bare(name: &str, request: u32) -> Self {
        Self {
            name: name.to_owned(),
            request,
            words: Vec::new(),
            trailing_bytes: 0,
        }
    }

    /// Convenience constructor for an ioctl taking `words` and no blob.
    pub fn with_words(name: &str, request: u32, words: Vec<WordShape>) -> Self {
        Self {
            name: name.to_owned(),
            request,
            words,
            trailing_bytes: 0,
        }
    }
}

/// Self-description of a driver's syscall surface.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DriverApi {
    /// Supported ioctl commands.
    pub ioctls: Vec<IoctlDesc>,
    /// Whether `read(2)` does something useful.
    pub supports_read: bool,
    /// Whether `write(2)` does something useful.
    pub supports_write: bool,
    /// Whether `mmap(2)` does something useful.
    pub supports_mmap: bool,
    /// Whether this is a proprietary vendor driver. Upstream interfaces
    /// (V4L2, DRM, ALSA, evdev, …) have public syzlang descriptions;
    /// vendor drivers do not — a syscall fuzzer only sees an opaque
    /// ioctl surface for them, while their interface knowledge lives in
    /// the (closed-source) HAL. This asymmetry is the core premise of
    /// the DroidFuzz paper.
    pub vendor: bool,
    /// Declarative state machine of the driver, when one is authored.
    /// This is analysis-side knowledge (what a static pass over the
    /// driver source would recover), not something the fuzzer's syscall
    /// surface exposes.
    pub state_model: Option<StateModel>,
}

/// Guard over one little-endian `u32` argument word of a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordGuard {
    /// Exactly this value.
    Eq(u32),
    /// Any value in `[min, max]` inclusive.
    In(u32, u32),
    /// One of an enumerated set.
    OneOf(Vec<u32>),
    /// `word & mask == value`.
    MaskEq(u32, u32),
    /// `word & mask != 0`.
    MaskNonZero(u32),
    /// Unconstrained.
    Any,
}

impl WordGuard {
    /// Whether `w` satisfies the guard.
    pub fn admits(&self, w: u32) -> bool {
        match self {
            WordGuard::Eq(v) => w == *v,
            WordGuard::In(min, max) => (*min..=*max).contains(&w),
            WordGuard::OneOf(values) => values.contains(&w),
            WordGuard::MaskEq(mask, value) => w & mask == *value,
            WordGuard::MaskNonZero(mask) => w & mask != 0,
            WordGuard::Any => true,
        }
    }

    /// A minimal satisfying value, used when synthesizing prerequisite
    /// calls. Returns `None` for unsatisfiable guards.
    pub fn example(&self) -> Option<u32> {
        match self {
            WordGuard::Eq(v) => Some(*v),
            WordGuard::In(min, max) => (min <= max).then_some(*min),
            WordGuard::OneOf(values) => values.first().copied(),
            WordGuard::MaskEq(mask, value) => (value & mask == *value).then_some(*value),
            WordGuard::MaskNonZero(mask) => {
                (*mask != 0).then(|| 1u32 << mask.trailing_zeros())
            }
            WordGuard::Any => Some(0),
        }
    }
}

/// The syscall entry point a transition is keyed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransOp {
    /// `ioctl(2)` with this request code.
    Ioctl(u32),
    /// `read(2)` (guard 0 constrains the length).
    Read,
    /// `write(2)` (constrained by [`Transition::payload_prefix`]).
    Write,
    /// `mmap(2)` (guards constrain `len`, `prot`).
    Mmap,
    /// `bind(2)` on a socket (guard 0 constrains the address).
    Bind,
    /// `connect(2)` on a socket.
    Connect,
    /// `listen(2)` on a socket.
    Listen,
    /// `accept(2)` on a socket; usually paired with [`Transition::spawns`].
    Accept,
}

/// Whether a transition is certain to succeed when its source state and
/// guards match, or merely allowed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reliability {
    /// Matching state + satisfied guards imply the syscall succeeds and
    /// lands in the target state. The abstract interpreter counts only
    /// these toward the static depth score (soundness: static depth must
    /// lower-bound dynamic depth).
    Guaranteed,
    /// The outcome depends on state the model does not track; the
    /// abstract state joins to ⊤ unless the transition is a self-loop.
    MayFail,
}

/// One guarded transition of a driver state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Triggering entry point.
    pub op: TransOp,
    /// Source states; empty = applies from any state.
    pub from: Vec<String>,
    /// Target state; `None` = state unchanged (self-loop).
    pub to: Option<String>,
    /// Word guards, aligned with the call's scalar argument words
    /// (missing trailing guards mean "any").
    pub guards: Vec<WordGuard>,
    /// Required byte-payload prefix (for [`TransOp::Write`] firmware
    /// blobs and the like).
    pub payload_prefix: Option<Vec<u8>>,
    /// Success certainty.
    pub reliability: Reliability,
    /// Whether firing (or attempting) this transition can raise a fatal,
    /// kernel-wedging bug; the abstract interpreter stops counting depth
    /// after any call that may take a hazardous path.
    pub hazard: bool,
    /// Abstract resource this transition produces (e.g. `"ion:token"`),
    /// used for consume-before-produce checks and relation-graph priors.
    pub produces: Option<String>,
    /// Abstract resource this transition consumes.
    pub consumes: Option<String>,
    /// Initial state of a freshly spawned cell (an `accept(2)` child).
    pub spawns: Option<String>,
}

impl Transition {
    fn op(op: TransOp) -> Self {
        Self {
            op,
            from: Vec::new(),
            to: None,
            guards: Vec::new(),
            payload_prefix: None,
            reliability: Reliability::Guaranteed,
            hazard: false,
            produces: None,
            consumes: None,
            spawns: None,
        }
    }

    /// An ioctl-triggered transition.
    pub fn ioctl(request: u32) -> Self {
        Self::op(TransOp::Ioctl(request))
    }

    /// A `read(2)`-triggered transition.
    pub fn read() -> Self {
        Self::op(TransOp::Read)
    }

    /// A `write(2)`-triggered transition.
    pub fn write() -> Self {
        Self::op(TransOp::Write)
    }

    /// An `mmap(2)`-triggered transition.
    pub fn mmap() -> Self {
        Self::op(TransOp::Mmap)
    }

    /// A `bind(2)`-triggered transition.
    pub fn bind() -> Self {
        Self::op(TransOp::Bind)
    }

    /// A `connect(2)`-triggered transition.
    pub fn connect() -> Self {
        Self::op(TransOp::Connect)
    }

    /// A `listen(2)`-triggered transition.
    pub fn listen() -> Self {
        Self::op(TransOp::Listen)
    }

    /// An `accept(2)`-triggered transition.
    pub fn accept() -> Self {
        Self::op(TransOp::Accept)
    }

    /// Restricts the source states.
    pub fn from(mut self, states: &[&str]) -> Self {
        self.from = states.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Sets the target state.
    pub fn to(mut self, state: &str) -> Self {
        self.to = Some(state.to_owned());
        self
    }

    /// Appends one word guard.
    pub fn guard(mut self, g: WordGuard) -> Self {
        self.guards.push(g);
        self
    }

    /// Requires the byte payload to start with `prefix`.
    pub fn prefix(mut self, prefix: &[u8]) -> Self {
        self.payload_prefix = Some(prefix.to_vec());
        self
    }

    /// Marks the outcome as uncertain.
    pub fn may_fail(mut self) -> Self {
        self.reliability = Reliability::MayFail;
        self
    }

    /// Marks the transition as possibly raising a fatal bug.
    pub fn hazard(mut self) -> Self {
        self.hazard = true;
        self
    }

    /// Declares a produced abstract resource.
    pub fn produces(mut self, tag: &str) -> Self {
        self.produces = Some(tag.to_owned());
        self
    }

    /// Declares a consumed abstract resource.
    pub fn consumes(mut self, tag: &str) -> Self {
        self.consumes = Some(tag.to_owned());
        self
    }

    /// Declares a spawned cell (accept child) and its initial state.
    pub fn spawns(mut self, state: &str) -> Self {
        self.spawns = Some(state.to_owned());
        self
    }
}

/// Declarative state machine of a driver: the abstract states its
/// behaviour is conditioned on and the guarded transitions between them.
///
/// Models must be *success-complete* per listed entry point: every way a
/// listed op can succeed appears as a transition. The abstract
/// interpreter relies on this to conclude that a call matching no
/// transition from a known state provably fails without changing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateModel {
    /// State at boot (device-scoped) or at `open(2)` (per-open).
    pub initial: String,
    /// All named abstract states.
    pub states: Vec<String>,
    /// Guarded transitions.
    pub transitions: Vec<Transition>,
    /// Whether state lives per open file (fresh open = fresh `initial`)
    /// rather than in the device itself.
    pub per_open: bool,
    /// Whether closing *any* fd perturbs device-global state (release
    /// frees per-owner resources), leaving the abstract state unknown.
    pub close_clobbers: bool,
    /// Whether close orphans cells spawned from this one (listening
    /// Bluetooth sockets orphan their accept children; using an orphan
    /// can fire a use-after-free).
    pub close_orphans: bool,
    /// Whether per-open cells share hidden global state (the HCI
    /// adapter); more than one live cell makes every one unknown.
    pub global_backing: bool,
}

impl StateModel {
    /// Creates a model with no transitions yet.
    pub fn new(initial: &str, states: &[&str]) -> Self {
        Self {
            initial: initial.to_owned(),
            states: states.iter().map(|s| (*s).to_owned()).collect(),
            transitions: Vec::new(),
            per_open: false,
            close_clobbers: false,
            close_orphans: false,
            global_backing: false,
        }
    }

    /// Marks state as per-open-file.
    pub fn per_open(mut self) -> Self {
        self.per_open = true;
        self
    }

    /// Marks close as perturbing device-global state.
    pub fn close_clobbers(mut self) -> Self {
        self.close_clobbers = true;
        self
    }

    /// Marks close as orphaning spawned children.
    pub fn close_orphans(mut self) -> Self {
        self.close_orphans = true;
        self
    }

    /// Marks per-open cells as sharing hidden global state.
    pub fn global_backing(mut self) -> Self {
        self.global_backing = true;
        self
    }

    /// Appends transitions.
    pub fn with(mut self, transitions: Vec<Transition>) -> Self {
        self.transitions.extend(transitions);
        self
    }
}

/// Structural problems in a [`StateModel`] (unknown state references,
/// unsatisfiable guards). Returns human-readable findings; empty = valid.
pub fn validate_model(label: &str, model: &StateModel) -> Vec<String> {
    let mut problems = Vec::new();
    let known = |s: &String| model.states.contains(s);
    if !known(&model.initial) {
        problems.push(format!("{label}: initial state {:?} not in state list", model.initial));
    }
    for (i, t) in model.transitions.iter().enumerate() {
        for s in &t.from {
            if !known(s) {
                problems.push(format!("{label}: transition {i} from unknown state {s:?}"));
            }
        }
        if let Some(to) = &t.to {
            if !known(to) {
                problems.push(format!("{label}: transition {i} to unknown state {to:?}"));
            }
        }
        if let Some(sp) = &t.spawns {
            if !known(sp) {
                problems.push(format!("{label}: transition {i} spawns unknown state {sp:?}"));
            }
        }
        for (j, g) in t.guards.iter().enumerate() {
            if g.example().is_none() {
                problems.push(format!("{label}: transition {i} guard {j} is unsatisfiable"));
            }
        }
    }
    problems
}

/// Boot-time validation of a driver's self-description: duplicate ioctl
/// request codes, empty `Choice`/`Flags` word shapes, and state-model
/// structure. Returns human-readable findings; empty = valid.
pub fn validate_api(name: &str, api: &DriverApi) -> Vec<String> {
    let mut problems = Vec::new();
    let mut seen = std::collections::BTreeMap::new();
    for ioctl in &api.ioctls {
        if let Some(prev) = seen.insert(ioctl.request, &ioctl.name) {
            problems.push(format!(
                "{name}: duplicate ioctl request {:#010x} ({prev} vs {})",
                ioctl.request, ioctl.name
            ));
        }
        for (i, shape) in ioctl.words.iter().enumerate() {
            match shape {
                WordShape::Choice(values) if values.is_empty() => {
                    problems.push(format!("{name}: {} word {i} has an empty Choice", ioctl.name));
                }
                WordShape::Flags(values) if values.is_empty() => {
                    problems.push(format!("{name}: {} word {i} has an empty Flags", ioctl.name));
                }
                WordShape::Range { min, max } if min > max => {
                    problems.push(format!("{name}: {} word {i} has min > max", ioctl.name));
                }
                _ => {}
            }
        }
    }
    if let Some(model) = &api.state_model {
        problems.extend(validate_model(name, model));
        let requests: Vec<u32> = api.ioctls.iter().map(|i| i.request).collect();
        for (i, t) in model.transitions.iter().enumerate() {
            if let TransOp::Ioctl(req) = t.op {
                if !requests.contains(&req) {
                    problems.push(format!(
                        "{name}: transition {i} references unlisted ioctl request {req:#010x}"
                    ));
                }
            }
        }
    }
    problems
}

/// Reads little-endian word `i` of an ioctl argument, 0 when out of range
/// (mirrors a kernel copying a short user buffer padded with zeroes).
pub fn word(arg: &[u8], i: usize) -> u32 {
    let off = i * 4;
    if off + 4 <= arg.len() {
        u32::from_le_bytes([arg[off], arg[off + 1], arg[off + 2], arg[off + 3]])
    } else if off < arg.len() {
        let mut buf = [0u8; 4];
        buf[..arg.len() - off].copy_from_slice(&arg[off..]);
        u32::from_le_bytes(buf)
    } else {
        0
    }
}

/// Encodes words into a little-endian byte buffer (the inverse of [`word`]).
pub fn encode_words(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_decoding_handles_short_buffers() {
        let buf = encode_words(&[0xdead_beef, 0x1234_5678]);
        assert_eq!(word(&buf, 0), 0xdead_beef);
        assert_eq!(word(&buf, 1), 0x1234_5678);
        assert_eq!(word(&buf, 2), 0);
        assert_eq!(word(&buf[..6], 1), 0x5678);
    }

    #[test]
    fn ctx_hit_records_to_kcov_and_global() {
        let mut kcov = KcovBuffer::new();
        kcov.enable();
        let mut global = CoverageMap::new();
        let mut bugs = BugSink::new();
        let mut ctx = DriverCtx::new(0x100, "t", Some(&mut kcov), &mut global, &mut bugs, 1);
        ctx.hit(&[1, 2]);
        ctx.hit(&[1, 2]);
        ctx.hit(&[3]);
        assert_eq!(kcov.len(), 3, "kcov keeps duplicates");
        assert_eq!(global.len(), 2, "global map deduplicates");
    }

    #[test]
    fn ctx_spin_fires_watchdog_once_budget_exhausted() {
        let mut global = CoverageMap::new();
        let mut bugs = BugSink::new();
        let mut ctx = DriverCtx::new(0, "sensorhub", None, &mut global, &mut bugs, 1);
        assert!(ctx.spin(WATCHDOG_BUDGET - 1));
        assert!(!ctx.spin(10));
        let reports = bugs.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::SoftLockup);
        assert!(reports[0].title.contains("sensorhub"));
    }

    #[test]
    fn ctx_bug_helpers_classify_components() {
        let mut global = CoverageMap::new();
        let mut bugs = BugSink::new();
        let mut ctx = DriverCtx::new(0, "d", None, &mut global, &mut bugs, 1);
        ctx.warn("a");
        ctx.warn_subsystem("b");
        ctx.kasan_uaf("c");
        ctx.kasan_invalid("d");
        ctx.bug_msg("BUG: looking up invalid subclass: 8");
        let reports = bugs.take();
        assert_eq!(reports[0].component, Component::KernelDriver);
        assert_eq!(reports[1].component, Component::KernelSubsystem);
        assert_eq!(reports[2].kind, BugKind::KasanUseAfterFree);
        assert_eq!(reports[3].kind, BugKind::KasanInvalidAccess);
        assert_eq!(reports[4].kind, BugKind::Bug);
    }
}
