//! ALSA-PCM-style audio driver at `/dev/snd_pcm0` — the kernel side of the
//! Audio HAL.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Set hardware parameters (`arg[0]` = rate, `arg[1]` = channels,
/// `arg[2]` = format).
pub const PCM_HW_PARAMS: u32 = 0x400C_4101;
/// Prepare the stream.
pub const PCM_PREPARE: u32 = 0x4004_4102;
/// Start the stream.
pub const PCM_START: u32 = 0x4004_4103;
/// Pause (`arg[0]` = 1) / resume (`arg[0]` = 0).
pub const PCM_PAUSE: u32 = 0x4004_4104;
/// Drain pending frames and stop.
pub const PCM_DRAIN: u32 = 0x4004_4105;
/// Drop pending frames immediately.
pub const PCM_DROP: u32 = 0x4004_4106;
/// Read the hardware pointer.
pub const PCM_GET_HWPTR: u32 = 0x8004_4107;

/// Valid sample rates.
pub const RATES: [u32; 5] = [8000, 16000, 44100, 48000, 96000];
/// Valid sample formats.
pub const FORMATS: [u32; 3] = [1, 2, 10];

/// Declarative state machine of one substream (per open fd), mirroring
/// the ALSA PCM lifecycle: `Open → Setup → Prepared → Running ⇄ Paused`,
/// with `DRAIN`/`DROP` falling back to `Setup`. The first `write` from
/// `Prepared` auto-starts the stream, as ALSA does.
fn pcm_state_model() -> StateModel {
    StateModel::new("Open", &["Open", "Setup", "Prepared", "Running", "Paused"])
        .per_open()
        .with(vec![
            Transition::ioctl(PCM_HW_PARAMS)
                .guard(WordGuard::OneOf(RATES.to_vec()))
                .guard(WordGuard::In(1, 8))
                .guard(WordGuard::OneOf(FORMATS.to_vec()))
                .from(&["Open", "Setup", "Prepared"])
                .to("Setup"),
            Transition::ioctl(PCM_PREPARE)
                .from(&["Setup", "Prepared", "Running", "Paused"])
                .to("Prepared"),
            Transition::ioctl(PCM_START).from(&["Prepared"]).to("Running"),
            Transition::ioctl(PCM_PAUSE)
                .guard(WordGuard::Eq(1))
                .from(&["Running"])
                .to("Paused"),
            Transition::ioctl(PCM_PAUSE)
                .guard(WordGuard::Eq(0))
                .from(&["Paused"])
                .to("Running"),
            Transition::ioctl(PCM_DRAIN).from(&["Running", "Paused"]).to("Setup"),
            Transition::ioctl(PCM_DROP).from(&["Running", "Paused"]).to("Setup"),
            Transition::ioctl(PCM_GET_HWPTR),
            Transition::write().from(&["Prepared"]).to("Running"),
            Transition::write().from(&["Running"]),
            Transition::mmap().from(&["Setup", "Prepared", "Running", "Paused"]),
        ])
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PcmState {
    Open,
    Setup,
    Prepared,
    Running,
    Paused,
}

/// Per-open PCM substream (`substream->private_data`).
#[derive(Debug)]
struct PcmStream {
    state: PcmState,
    rate: u32,
    channels: u32,
    format: u32,
    hwptr: u64,
}

impl Default for PcmStream {
    fn default() -> Self {
        Self { state: PcmState::Open, rate: 0, channels: 0, format: 0, hwptr: 0 }
    }
}

/// The PCM audio driver; each open file is an independent substream.
#[derive(Debug, Default)]
pub struct PcmDevice {
    streams: std::collections::BTreeMap<u64, PcmStream>,
}

impl PcmDevice {
    /// Creates a PCM device with no substreams.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CharDevice for PcmDevice {
    fn name(&self) -> &str {
        "pcm"
    }

    fn node(&self) -> String {
        "/dev/snd_pcm0".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "PCM_HW_PARAMS",
                    PCM_HW_PARAMS,
                    vec![
                        WordShape::Choice(RATES.to_vec()),
                        WordShape::Range { min: 1, max: 8 },
                        WordShape::Choice(FORMATS.to_vec()),
                    ],
                ),
                IoctlDesc::bare("PCM_PREPARE", PCM_PREPARE),
                IoctlDesc::bare("PCM_START", PCM_START),
                IoctlDesc::with_words("PCM_PAUSE", PCM_PAUSE, vec![WordShape::Choice(vec![0, 1])]),
                IoctlDesc::bare("PCM_DRAIN", PCM_DRAIN),
                IoctlDesc::bare("PCM_DROP", PCM_DROP),
                IoctlDesc::bare("PCM_GET_HWPTR", PCM_GET_HWPTR),
            ],
            supports_read: false,
            supports_write: true,
            supports_mmap: true,
            vendor: false,
            state_model: Some(pcm_state_model()),
        }
    }

    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
        self.streams.remove(&ctx.open_id);
    }

    fn write(&mut self, ctx: &mut DriverCtx<'_>, data: &[u8]) -> Result<usize, Errno> {
        let s = self.streams.entry(ctx.open_id).or_default();
        if !matches!(s.state, PcmState::Running | PcmState::Prepared) {
            return Err(Errno::EPIPE);
        }
        if s.state == PcmState::Prepared {
            // First write auto-starts, as ALSA does.
            s.state = PcmState::Running;
            ctx.hit(&[1, 9]);
        }
        s.hwptr += data.len() as u64 / 4;
        ctx.hit_path(3, &[1, u64::from(s.rate) / 16000, u64::from(s.channels).min(4), data.len().min(8192) as u64 / 1024]);
        Ok(data.len())
    }

    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        let s = self.streams.entry(ctx.open_id).or_default();
        if s.state == PcmState::Open {
            return Err(Errno::EINVAL);
        }
        ctx.hit(&[2, len as u64 / 4096, u64::from(prot)]);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let s = self.streams.entry(ctx.open_id).or_default();
        let state_tag = s.state as u64;
        match request {
            PCM_HW_PARAMS => {
                if matches!(s.state, PcmState::Running | PcmState::Paused) {
                    return Err(Errno::EBUSY);
                }
                let (rate, ch, fmt) = (word(arg, 0), word(arg, 1), word(arg, 2));
                if !RATES.contains(&rate) || !FORMATS.contains(&fmt) || !(1..=8).contains(&ch) {
                    return Err(Errno::EINVAL);
                }
                s.rate = rate;
                s.channels = ch;
                s.format = fmt;
                s.state = PcmState::Setup;
                ctx.hit(&[3, state_tag, u64::from(rate) / 16000, u64::from(ch).min(4), u64::from(fmt)]);
                Ok(IoctlOut::Val(0))
            }
            PCM_PREPARE => {
                if s.state == PcmState::Open {
                    return Err(Errno::EINVAL);
                }
                s.state = PcmState::Prepared;
                s.hwptr = 0;
                ctx.hit(&[4, state_tag]);
                Ok(IoctlOut::Val(0))
            }
            PCM_START => {
                if s.state != PcmState::Prepared {
                    return Err(Errno::EINVAL);
                }
                s.state = PcmState::Running;
                ctx.hit_path(3, &[5]);
                Ok(IoctlOut::Val(0))
            }
            PCM_PAUSE => {
                let on = word(arg, 0);
                match (s.state, on) {
                    (PcmState::Running, 1) => s.state = PcmState::Paused,
                    (PcmState::Paused, 0) => s.state = PcmState::Running,
                    _ => return Err(Errno::EINVAL),
                }
                ctx.hit(&[6, u64::from(on)]);
                Ok(IoctlOut::Val(0))
            }
            PCM_DRAIN => {
                if !matches!(s.state, PcmState::Running | PcmState::Paused) {
                    return Err(Errno::EINVAL);
                }
                s.state = PcmState::Setup;
                ctx.hit_path(3, &[7, s.hwptr.min(8)]);
                Ok(IoctlOut::Val(s.hwptr))
            }
            PCM_DROP => {
                if !matches!(s.state, PcmState::Running | PcmState::Paused) {
                    return Err(Errno::EINVAL);
                }
                s.state = PcmState::Setup;
                s.hwptr = 0;
                ctx.hit(&[8, state_tag]);
                Ok(IoctlOut::Val(0))
            }
            PCM_GET_HWPTR => {
                ctx.hit(&[9, state_tag]);
                Ok(IoctlOut::Val(s.hwptr))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    fn run(
        dev: &mut PcmDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x900, "pcm", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn playback_lifecycle() {
        let mut dev = PcmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, PCM_HW_PARAMS, &[48000, 2, 2]).unwrap();
        run(&mut dev, &mut g, &mut b, PCM_PREPARE, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, PCM_START, &[]).unwrap();
        let mut ctx = DriverCtx::new(0x900, "pcm", None, &mut g, &mut b, 1);
        assert_eq!(dev.write(&mut ctx, &[0u8; 512]).unwrap(), 512);
        run(&mut dev, &mut g, &mut b, PCM_PAUSE, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, PCM_PAUSE, &[0]).unwrap();
        let IoctlOut::Val(drained) = run(&mut dev, &mut g, &mut b, PCM_DRAIN, &[]).unwrap()
        else {
            panic!()
        };
        assert_eq!(drained, 128);
    }

    #[test]
    fn write_auto_starts_from_prepared() {
        let mut dev = PcmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, PCM_HW_PARAMS, &[44100, 2, 1]).unwrap();
        run(&mut dev, &mut g, &mut b, PCM_PREPARE, &[]).unwrap();
        let mut ctx = DriverCtx::new(0x900, "pcm", None, &mut g, &mut b, 1);
        dev.write(&mut ctx, &[0u8; 64]).unwrap();
        // Pause only valid when running — proves auto-start happened.
        run(&mut dev, &mut g, &mut b, PCM_PAUSE, &[1]).unwrap();
    }

    #[test]
    fn hw_params_rejected_while_running() {
        let mut dev = PcmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, PCM_HW_PARAMS, &[16000, 1, 1]).unwrap();
        run(&mut dev, &mut g, &mut b, PCM_PREPARE, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, PCM_START, &[]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, PCM_HW_PARAMS, &[8000, 1, 1]).unwrap_err(),
            Errno::EBUSY
        );
    }

    #[test]
    fn invalid_rate_rejected() {
        let mut dev = PcmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, PCM_HW_PARAMS, &[12345, 2, 1]).unwrap_err(),
            Errno::EINVAL
        );
    }
}
