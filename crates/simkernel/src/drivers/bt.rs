//! The Bluetooth protocol stack: a raw HCI channel and L2CAP sockets.
//!
//! Reached through the socket syscalls rather than devfs. Carries three of
//! Table II's injected bugs:
//!
//! * **#7** `KASAN: invalid-access in hci_read_supported_codecs` — reading
//!   supported codecs while the controller is still mid-initialization.
//! * **#8** `WARNING in l2cap_send_disconn_req` — disconnect request on a
//!   connection-less (datagram) channel.
//! * **#11** `KASAN: slab-use-after-free in bt_accept_unlink` — touching an
//!   accepted child socket after its listening parent was freed.

use crate::coverage::block_for;
use crate::driver::{word, DriverCtx, StateModel, Transition, WordGuard};
use crate::errno::Errno;
use crate::kernel::{HCI_COV_BASE, L2CAP_COV_BASE};
use crate::syscall::btproto;
use std::collections::BTreeMap;

/// `HCIDEVUP` — bring up the controller (`arg[0]` selects the init mode:
/// 0 = full init, 1 = staged init requiring [`HCIDEVSETUP`]).
pub const HCIDEVUP: u32 = 0x4004_48C9;
/// `HCIDEVDOWN` — power the controller down.
pub const HCIDEVDOWN: u32 = 0x4004_48CA;
/// `HCIDEVRESET` — reset controller state.
pub const HCIDEVRESET: u32 = 0x4004_48CB;
/// `HCIINQUIRY` — run device discovery; populates the remote-address table.
pub const HCIINQUIRY: u32 = 0x8004_48F0;
/// Vendor command: read the supported-codecs list.
pub const HCIREADCODECS: u32 = 0x8004_48F8;
/// Complete a staged init started by `HCIDEVUP` mode 1.
pub const HCIDEVSETUP: u32 = 0x4004_48FC;

/// Magic header of the vendor controller firmware blob. `HCIDEVUP` fails
/// with `EIO` until a blob with this header has been written to the raw
/// HCI socket — the vendor Bluetooth HAL ships the blob; nothing else
/// knows it.
pub const FIRMWARE_MAGIC: [u8; 4] = [0x4D, 0x54, 0x4B, 0x46];

/// Declarative state machine of a raw HCI socket. The socket itself only
/// tracks bound-ness, but the interesting state is the *controller*
/// (down / staged-init / ready) plus the firmware-loaded latch — both
/// global to the stack — so the model is the product abstraction for the
/// common one-HCI-socket case and is flagged [`StateModel::global_backing`]:
/// a second live HCI fd invalidates the tracking.
///
/// * `Fresh` — socket not bound; every HCI ioctl fails `ENOTCONN`.
/// * `Bound` — bound to controller 0; controller down, no firmware.
/// * `BoundFw` — firmware blob uploaded; controller still down.
/// * `Init` — staged init (`HCIDEVUP` mode 1): codecs read here is bug #7.
/// * `Ready` — controller fully up; inquiry and codec reads succeed.
pub fn hci_socket_state_model() -> StateModel {
    StateModel::new("Fresh", &["Fresh", "Bound", "BoundFw", "Init", "Ready"])
        .per_open()
        .global_backing()
        .with(vec![
            Transition::bind().guard(WordGuard::Eq(0)).from(&["Fresh"]).to("Bound"),
            Transition::write().prefix(&FIRMWARE_MAGIC).from(&["Bound"]).to("BoundFw"),
            Transition::write().prefix(&FIRMWARE_MAGIC).from(&["BoundFw"]),
            Transition::ioctl(HCIDEVUP).guard(WordGuard::Eq(0)).from(&["BoundFw"]).to("Ready"),
            Transition::ioctl(HCIDEVUP).guard(WordGuard::Eq(1)).from(&["BoundFw"]).to("Init"),
            Transition::ioctl(HCIDEVSETUP).from(&["Init"]).to("Ready"),
            Transition::ioctl(HCIDEVDOWN).from(&["Bound"]),
            Transition::ioctl(HCIDEVDOWN).from(&["BoundFw"]),
            Transition::ioctl(HCIDEVDOWN).from(&["Init", "Ready"]).to("BoundFw"),
            Transition::ioctl(HCIDEVRESET).from(&["Bound", "BoundFw", "Init", "Ready"]),
            Transition::ioctl(HCIINQUIRY).from(&["Ready"]).produces("bt:inquiry"),
            Transition::ioctl(HCIREADCODECS).from(&["Ready"]),
            // Bug #7: reading codecs mid-init dereferences an unallocated
            // table (KASAN invalid-access on device A2).
            Transition::ioctl(HCIREADCODECS).from(&["Init"]).may_fail().hazard(),
            Transition::read().from(&["Init", "Ready"]),
        ])
}

/// Declarative state machine of an L2CAP socket of type `ty` (1 =
/// stream, 2 = dgram, 3 = raw). Socket state is genuinely per-open.
/// `close_orphans` records that closing a listening parent leaves
/// accepted children orphaned — using an orphan afterwards is bug #11's
/// use-after-free (device D), so the abstract interpreter treats any
/// post-orphan use as hazardous.
pub fn l2cap_socket_state_model(ty: u32) -> StateModel {
    let states: &[&str] = if ty == 1 {
        &["Fresh", "Bound", "Listening", "Connected", "Disconnected"]
    } else {
        &["Fresh", "Bound", "Connected", "Disconnected"]
    };
    let mut t = vec![
        Transition::bind().from(&["Fresh"]).to("Bound"),
        Transition::ioctl(L2CAP_DISCONN_REQ).from(&["Connected"]).to("Disconnected"),
        Transition::ioctl(L2CAP_SET_MTU).guard(WordGuard::In(48, 65535)),
        Transition::ioctl(L2CAP_GET_CONNINFO).from(&["Connected"]),
        Transition::read().from(&["Connected"]),
        Transition::write().from(&["Connected"]),
    ];
    if ty == 1 {
        t.push(
            Transition::connect()
                .from(&["Fresh", "Bound", "Listening", "Disconnected"])
                .to("Connected")
                .consumes("bt:inquiry"),
        );
        t.push(Transition::listen().from(&["Bound"]).to("Listening"));
        t.push(Transition::accept().from(&["Listening"]).spawns("Connected"));
        t.push(
            Transition::ioctl(L2CAP_SET_MODE)
                .guard(WordGuard::In(0, 3))
                .from(&["Fresh", "Bound", "Listening", "Disconnected"]),
        );
    } else {
        t.push(
            Transition::connect()
                .from(&["Fresh", "Bound", "Disconnected"])
                .to("Connected")
                .consumes("bt:inquiry"),
        );
        t.push(
            Transition::ioctl(L2CAP_SET_MODE)
                .guard(WordGuard::In(0, 3))
                .from(&["Fresh", "Bound", "Disconnected"]),
        );
    }
    StateModel::new("Fresh", states).per_open().close_orphans().with(t)
}

/// L2CAP: request channel disconnect.
pub const L2CAP_DISCONN_REQ: u32 = 0x4004_6C01;
/// L2CAP: set channel MTU (`arg[0]`).
pub const L2CAP_SET_MTU: u32 = 0x4004_6C02;
/// L2CAP: read connection info.
pub const L2CAP_GET_CONNINFO: u32 = 0x8008_6C03;
/// L2CAP: set retransmission mode (`arg[0]` in 0..=3).
pub const L2CAP_SET_MODE: u32 = 0x4004_6C04;

/// Records a block in the HCI coverage region (sockets have no devfs
/// base, so the stack computes blocks itself).
fn hci_hit(ctx: &mut DriverCtx<'_>, parts: &[u64]) {
    let mut fp = vec![0xB7u64];
    fp.extend_from_slice(parts);
    ctx.hit_raw(block_for(HCI_COV_BASE, &fp));
}

/// Records a block in the L2CAP coverage region.
fn l2_hit(ctx: &mut DriverCtx<'_>, parts: &[u64]) {
    let mut fp = vec![0x12u64];
    fp.extend_from_slice(parts);
    ctx.hit_raw(block_for(L2CAP_COV_BASE, &fp));
}

/// Weighted variant of [`hci_hit`]: deep controller paths execute many
/// blocks.
fn hci_hit_path(ctx: &mut DriverCtx<'_>, weight: u64, parts: &[u64]) {
    for i in 0..weight.max(1) {
        let mut fp = parts.to_vec();
        fp.push(0xCC00 + i);
        hci_hit(ctx, &fp);
    }
}

/// Weighted variant of [`l2_hit`].
fn l2_hit_path(ctx: &mut DriverCtx<'_>, weight: u64, parts: &[u64]) {
    for i in 0..weight.max(1) {
        let mut fp = parts.to_vec();
        fp.push(0xCC00 + i);
        l2_hit(ctx, &fp);
    }
}

/// Which injected Bluetooth bugs the firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtBugs {
    /// Bug #7 (device A2).
    pub hci_codecs_kasan: bool,
    /// Bug #8 (device B).
    pub l2cap_disconn_warn: bool,
    /// Bug #11 (device D).
    pub accept_unlink_uaf: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HciState {
    Down,
    Init,
    Ready,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SockState {
    Fresh,
    Bound,
    Listening,
    Connected,
    Disconnected,
}

#[derive(Debug)]
struct BtSocket {
    proto: u32,
    ty: u32,
    state: SockState,
    /// PSM (L2CAP) or device index (HCI) bound to.
    local: u64,
    /// Remote address once connected.
    remote: u64,
    /// Parent socket (for accepted children).
    parent: Option<u64>,
    children: Vec<u64>,
    /// Parent freed while this child was still linked in its accept queue.
    orphaned: bool,
    tx_count: u64,
    mode: u32,
    mtu: u32,
}

impl BtSocket {
    fn new(ty: u32, proto: u32) -> Self {
        Self {
            proto,
            ty,
            state: SockState::Fresh,
            local: 0,
            remote: 0,
            parent: None,
            children: Vec::new(),
            orphaned: false,
            tx_count: 0,
            mode: 0,
            mtu: 672,
        }
    }

    fn is_connectionless(&self) -> bool {
        self.ty == 2
    }
}

/// The Bluetooth stack: one simulated controller plus the socket table.
#[derive(Debug)]
pub struct BtStack {
    armed: BtBugs,
    hci: HciState,
    /// Vendor firmware uploaded (prerequisite for `HCIDEVUP`).
    fw_loaded: bool,
    /// Remote addresses discovered by the last inquiry.
    inquiry: Vec<u64>,
    socks: BTreeMap<u64, BtSocket>,
}

impl BtStack {
    /// Creates a stack with no bugs armed.
    pub fn new() -> Self {
        Self::with_bugs(BtBugs::default())
    }

    /// Creates a stack with the given bugs armed.
    pub fn with_bugs(armed: BtBugs) -> Self {
        Self {
            armed,
            hci: HciState::Down,
            fw_loaded: false,
            inquiry: Vec::new(),
            socks: BTreeMap::new(),
        }
    }

    /// Whether the controller has completed initialization.
    pub fn controller_ready(&self) -> bool {
        self.hci == HciState::Ready
    }


    /// `socket(AF_BLUETOOTH, ty, proto)`.
    ///
    /// # Errors
    ///
    /// `EPROTONOSUPPORT` for unknown protocols, `EINVAL` for a socket type
    /// the protocol does not support.
    pub fn socket(&mut self, ctx: &mut DriverCtx<'_>, ty: u32, proto: u32) -> Result<(), Errno> {
        match proto {
            btproto::HCI => {
                if ty != 3 {
                    return Err(Errno::EINVAL);
                }
                hci_hit(ctx, &[0, u64::from(ty)]);
            }
            btproto::L2CAP => {
                if !(1..=3).contains(&ty) {
                    return Err(Errno::EINVAL);
                }
                l2_hit(ctx, &[0, u64::from(ty)]);
            }
            _ => return Err(Errno::EPROTONOSUPPORT),
        }
        self.socks.insert(ctx.open_id, BtSocket::new(ty, proto));
        Ok(())
    }

    fn sock_mut(&mut self, id: u64) -> Result<&mut BtSocket, Errno> {
        self.socks.get_mut(&id).ok_or(Errno::EBADF)
    }

    /// Reports a use-after-free if the socket is an orphaned child and the
    /// UAF bug is armed. Returns `true` when the splat fired.
    fn check_orphan(&mut self, ctx: &mut DriverCtx<'_>, id: u64) -> bool {
        let armed = self.armed.accept_unlink_uaf;
        if let Some(sock) = self.socks.get(&id) {
            if sock.orphaned && armed {
                ctx.kasan_uaf("bt_accept_unlink");
                return true;
            }
        }
        false
    }

    /// `bind(2)` on a Bluetooth socket; `addr` is the controller index for
    /// HCI or the PSM for L2CAP.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown sockets, `EINVAL` when already bound, `ENODEV`
    /// for HCI controller indices other than 0.
    pub fn bind(&mut self, ctx: &mut DriverCtx<'_>, addr: u64) -> Result<u64, Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let id = ctx.open_id;
        let sock = self.sock_mut(id)?;
        if sock.state != SockState::Fresh {
            return Err(Errno::EINVAL);
        }
        if sock.proto == btproto::HCI && addr != 0 {
            return Err(Errno::ENODEV);
        }
        sock.state = SockState::Bound;
        sock.local = addr;
        let (proto, psm_bucket) = (sock.proto, addr.min(64));
        match proto {
            btproto::HCI => hci_hit(ctx, &[1, psm_bucket]),
            _ => l2_hit(ctx, &[1, psm_bucket]),
        }
        Ok(0)
    }

    /// `connect(2)`: L2CAP channel establishment (HCI sockets do not
    /// connect).
    ///
    /// # Errors
    ///
    /// `EOPNOTSUPP` on HCI sockets, `EISCONN`-like `EALREADY` when already
    /// connected.
    pub fn connect(&mut self, ctx: &mut DriverCtx<'_>, addr: u64) -> Result<u64, Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let id = ctx.open_id;
        let controller_ready = self.hci == HciState::Ready;
        let known_remote = self.inquiry.contains(&addr);
        let sock = self.sock_mut(id)?;
        if sock.proto == btproto::HCI {
            return Err(Errno::EOPNOTSUPP);
        }
        if sock.state == SockState::Connected {
            return Err(Errno::EALREADY);
        }
        sock.state = SockState::Connected;
        sock.remote = addr;
        let ty = u64::from(sock.ty);
        // Connecting to an address discovered by inquiry while the
        // controller is up exercises the full connection path (deeper
        // blocks); blind connects take the short path.
        let depth = match (controller_ready, known_remote) {
            (true, true) => 3u64,
            (true, false) => 2,
            _ => 1,
        };
        l2_hit_path(ctx, 2 * depth, &[2, ty, depth, addr % 17]);
        Ok(0)
    }

    /// `listen(2)` on a bound connection-oriented L2CAP socket.
    ///
    /// # Errors
    ///
    /// `EINVAL` unless the socket is a bound stream socket.
    pub fn listen(&mut self, ctx: &mut DriverCtx<'_>, backlog: u32) -> Result<u64, Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let id = ctx.open_id;
        let sock = self.sock_mut(id)?;
        if sock.proto != btproto::L2CAP || sock.ty != 1 || sock.state != SockState::Bound {
            return Err(Errno::EINVAL);
        }
        sock.state = SockState::Listening;
        let psm = sock.local.min(64);
        l2_hit_path(ctx, 3, &[3, psm, u64::from(backlog.min(8))]);
        Ok(0)
    }

    /// `accept(2)`: takes a (simulated) pending remote connection off a
    /// listening socket and registers it as `child_id`.
    ///
    /// The kernel dispatcher passes the parent socket id in `ctx.open_id`.
    ///
    /// # Errors
    ///
    /// `EINVAL` when the parent is not listening.
    pub fn accept(&mut self, ctx: &mut DriverCtx<'_>, child_id: u64) -> Result<(), Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let parent_id = ctx.open_id;
        let parent = self.sock_mut(parent_id)?;
        if parent.state != SockState::Listening {
            return Err(Errno::EINVAL);
        }
        parent.children.push(child_id);
        let (ty, proto, psm) = (parent.ty, parent.proto, parent.local);
        let mut child = BtSocket::new(ty, proto);
        child.state = SockState::Connected;
        child.local = psm;
        child.remote = 0xA0 + child_id % 7;
        child.parent = Some(parent_id);
        self.socks.insert(child_id, child);
        l2_hit_path(ctx, 4, &[4, psm.min(64), child_id % 5]);
        Ok(())
    }

    /// `ioctl(2)` on a Bluetooth socket.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown sockets, `ENOTTY` for unknown requests, plus
    /// request-specific errors documented on the constants.
    pub fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<u64, Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let id = ctx.open_id;
        let proto = self.sock_mut(id)?.proto;
        match proto {
            btproto::HCI => self.hci_ioctl(ctx, id, request, arg),
            _ => self.l2cap_ioctl(ctx, id, request, arg),
        }
    }

    fn hci_ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        id: u64,
        request: u32,
        arg: &[u8],
    ) -> Result<u64, Errno> {
        let bound = self.socks.get(&id).map(|s| s.state != SockState::Fresh) == Some(true);
        if !bound {
            return Err(Errno::ENOTCONN);
        }
        let state_tag = self.hci as u64;
        match request {
            HCIDEVUP => {
                if !self.fw_loaded {
                    return Err(Errno::EIO);
                }
                let mode = word(arg, 0);
                match (self.hci, mode) {
                    (HciState::Down, 0) => {
                        self.hci = HciState::Ready;
                        hci_hit_path(ctx, 4, &[10, 0]);
                    }
                    (HciState::Down, 1) => {
                        self.hci = HciState::Init;
                        hci_hit_path(ctx, 3, &[10, 1]);
                    }
                    (HciState::Down, _) => return Err(Errno::EINVAL),
                    _ => return Err(Errno::EALREADY),
                }
                Ok(0)
            }
            HCIDEVSETUP => {
                if self.hci != HciState::Init {
                    return Err(Errno::EINVAL);
                }
                self.hci = HciState::Ready;
                hci_hit_path(ctx, 3, &[11, word(arg, 0).min(4) as u64]);
                Ok(0)
            }
            HCIDEVDOWN => {
                self.hci = HciState::Down;
                self.inquiry.clear();
                hci_hit(ctx, &[12, state_tag]);
                Ok(0)
            }
            HCIDEVRESET => {
                hci_hit(ctx, &[13, state_tag]);
                if self.hci == HciState::Ready {
                    self.inquiry.clear();
                }
                Ok(0)
            }
            HCIINQUIRY => {
                if self.hci != HciState::Ready {
                    return Err(Errno::ENOTCONN);
                }
                let duration = u64::from(word(arg, 0)).clamp(1, 8);
                self.inquiry = (0..duration).map(|i| 0xBDADD0 + i).collect();
                hci_hit_path(ctx, 5, &[14, duration]);
                Ok(duration)
            }
            HCIREADCODECS => {
                match self.hci {
                    HciState::Ready => {
                        hci_hit(ctx, &[15, 2]);
                        Ok(3)
                    }
                    HciState::Init => {
                        // Bug #7: the codec table is read before the
                        // controller's init work has allocated it.
                        hci_hit(ctx, &[15, 1]);
                        if self.armed.hci_codecs_kasan {
                            ctx.kasan_invalid("hci_read_supported_codecs");
                        }
                        Err(Errno::EIO)
                    }
                    HciState::Down => Err(Errno::ENOTCONN),
                }
            }
            _ => Err(Errno::ENOTTY),
        }
    }

    fn l2cap_ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        id: u64,
        request: u32,
        arg: &[u8],
    ) -> Result<u64, Errno> {
        let warn_armed = self.armed.l2cap_disconn_warn;
        let sock = self.sock_mut(id)?;
        match request {
            L2CAP_DISCONN_REQ => {
                if sock.state != SockState::Connected {
                    return Err(Errno::ENOTCONN);
                }
                let connectionless = sock.is_connectionless();
                sock.state = SockState::Disconnected;
                l2_hit(ctx, &[5, u64::from(connectionless)]);
                if connectionless && warn_armed {
                    // Bug #8: sending a disconnect request on a channel
                    // that never had a connection-oriented link.
                    ctx.warn_subsystem("l2cap_send_disconn_req");
                }
                Ok(0)
            }
            L2CAP_SET_MTU => {
                let mtu = word(arg, 0);
                if !(48..=65535).contains(&mtu) {
                    return Err(Errno::EINVAL);
                }
                sock.mtu = mtu;
                let bucket = u64::from(mtu) / 4096;
                l2_hit(ctx, &[6, bucket]);
                Ok(0)
            }
            L2CAP_SET_MODE => {
                let mode = word(arg, 0);
                if mode > 3 {
                    return Err(Errno::EINVAL);
                }
                if sock.state == SockState::Connected {
                    return Err(Errno::EBUSY);
                }
                sock.mode = mode;
                l2_hit(ctx, &[7, u64::from(mode)]);
                Ok(0)
            }
            L2CAP_GET_CONNINFO => {
                if sock.state != SockState::Connected {
                    return Err(Errno::ENOTCONN);
                }
                let mode = u64::from(sock.mode);
                l2_hit(ctx, &[8, mode]);
                Ok(sock.remote)
            }
            _ => Err(Errno::ENOTTY),
        }
    }

    /// `read(2)` from a connected socket.
    ///
    /// # Errors
    ///
    /// `ENOTCONN` unless connected (HCI: unless the controller is up).
    pub fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let id = ctx.open_id;
        let hci_state = self.hci;
        let sock = self.sock_mut(id)?;
        match sock.proto {
            btproto::HCI => {
                if hci_state == HciState::Down {
                    return Err(Errno::ENOTCONN);
                }
                let n = len.min(32);
                hci_hit(ctx, &[16, n as u64 / 8]);
                Ok(vec![0x04; n])
            }
            _ => {
                if sock.state != SockState::Connected {
                    return Err(Errno::ENOTCONN);
                }
                let n = len.min(sock.mtu as usize);
                let bucket = n as u64 / 64;
                l2_hit(ctx, &[9, bucket]);
                Ok(vec![0u8; n.min(64)])
            }
        }
    }

    /// `write(2)` to a connected socket.
    ///
    /// # Errors
    ///
    /// `ENOTCONN` unless connected; `EPIPE` after disconnect.
    pub fn write(&mut self, ctx: &mut DriverCtx<'_>, data: &[u8]) -> Result<usize, Errno> {
        if self.check_orphan(ctx, ctx.open_id) {
            return Err(Errno::ECONNRESET);
        }
        let id = ctx.open_id;
        let hci_down = self.hci == HciState::Down;
        let sock = self.sock_mut(id)?;
        // Firmware upload: a bound raw HCI socket accepts the vendor blob
        // while the controller is down.
        if sock.proto == btproto::HCI && hci_down && sock.state == SockState::Bound {
            if data.len() >= 4 && data[..4] == FIRMWARE_MAGIC {
                self.fw_loaded = true;
                hci_hit(ctx, &[19, data.len().min(64) as u64 / 16]);
                return Ok(data.len());
            }
            hci_hit(ctx, &[19, 99]);
            return Err(Errno::EINVAL);
        }
        match sock.state {
            SockState::Connected => {
                sock.tx_count += 1;
                let (mode, tx, ty) = (u64::from(sock.mode), sock.tx_count.min(6), u64::from(sock.ty));
                if sock.proto == btproto::HCI {
                    hci_hit(ctx, &[17, data.len().min(64) as u64 / 8]);
                } else {
                    l2_hit_path(ctx, 3, &[10, mode, tx, ty, data.len().min(1024) as u64 / 128]);
                }
                Ok(data.len())
            }
            SockState::Disconnected => Err(Errno::EPIPE),
            _ => Err(Errno::ENOTCONN),
        }
    }

    /// `poll(2)` readiness: listening sockets always have a pending peer.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown sockets.
    pub fn poll(&mut self, ctx: &mut DriverCtx<'_>, events: u32) -> Result<u32, Errno> {
        let id = ctx.open_id;
        let sock = self.sock_mut(id)?;
        let ready = match sock.state {
            SockState::Listening | SockState::Connected => events & 0x5,
            _ => 0,
        };
        let state = sock.state as u64;
        l2_hit(ctx, &[11, state, u64::from(ready)]);
        Ok(ready)
    }

    /// Final close of a socket: unlinks children from a listening parent,
    /// leaving them orphaned — the precondition of bug #11. The UAF itself
    /// fires when an orphaned child is subsequently *used* (bind, connect,
    /// ioctl, read, write), not on plain teardown, so ordinary process
    /// exit is benign.
    pub fn close(&mut self, ctx: &mut DriverCtx<'_>) {
        let id = ctx.open_id;
        let Some(sock) = self.socks.remove(&id) else {
            return;
        };
        for child in &sock.children {
            if let Some(c) = self.socks.get_mut(child) {
                c.orphaned = true;
            }
        }
        match sock.proto {
            btproto::HCI => hci_hit(ctx, &[18, sock.state as u64]),
            _ => l2_hit(ctx, &[12, sock.state as u64]),
        }
    }

    /// Number of live sockets (for tests and device introspection).
    pub fn socket_count(&self) -> usize {
        self.socks.len()
    }
}

impl Default for BtStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::report::{BugKind, BugSink};

    fn ctx<'a>(
        global: &'a mut CoverageMap,
        bugs: &'a mut BugSink,
        open_id: u64,
    ) -> DriverCtx<'a> {
        DriverCtx::new(0, "bt", None, global, bugs, open_id)
    }

    /// Uploads the vendor firmware on an already-bound HCI socket.
    fn load_fw(bt: &mut BtStack, g: &mut CoverageMap, b: &mut BugSink, id: u64) {
        let mut blob = FIRMWARE_MAGIC.to_vec();
        blob.extend_from_slice(&[0u8; 16]);
        bt.write(&mut ctx(g, b, id), &blob).unwrap();
    }


    #[test]
    fn hci_codecs_before_setup_triggers_kasan_when_armed() {
        let mut bt = BtStack::with_bugs(BtBugs { hci_codecs_kasan: true, ..Default::default() });
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 3, btproto::HCI).unwrap();
        bt.bind(&mut ctx(&mut g, &mut b, 1), 0).unwrap();
        load_fw(&mut bt, &mut g, &mut b, 1);
        let up = crate::driver::encode_words(&[1]);
        bt.ioctl(&mut ctx(&mut g, &mut b, 1), HCIDEVUP, &up).unwrap();
        let err = bt.ioctl(&mut ctx(&mut g, &mut b, 1), HCIREADCODECS, &[]);
        assert_eq!(err, Err(Errno::EIO));
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::KasanInvalidAccess);
        assert!(reports[0].title.contains("hci_read_supported_codecs"));
    }

    #[test]
    fn hci_codecs_sequence_is_benign_when_unarmed_or_ready() {
        let mut bt = BtStack::new();
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 3, btproto::HCI).unwrap();
        bt.bind(&mut ctx(&mut g, &mut b, 1), 0).unwrap();
        load_fw(&mut bt, &mut g, &mut b, 1);
        let up = crate::driver::encode_words(&[0]);
        bt.ioctl(&mut ctx(&mut g, &mut b, 1), HCIDEVUP, &up).unwrap();
        assert_eq!(bt.ioctl(&mut ctx(&mut g, &mut b, 1), HCIREADCODECS, &[]), Ok(3));
        assert!(b.take().is_empty());
    }

    #[test]
    fn l2cap_disconn_on_dgram_warns_when_armed() {
        let mut bt = BtStack::with_bugs(BtBugs { l2cap_disconn_warn: true, ..Default::default() });
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 2, btproto::L2CAP).unwrap();
        bt.connect(&mut ctx(&mut g, &mut b, 1), 0x99).unwrap();
        bt.ioctl(&mut ctx(&mut g, &mut b, 1), L2CAP_DISCONN_REQ, &[]).unwrap();
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].title.contains("l2cap_send_disconn_req"));
        assert_eq!(reports[0].kind, BugKind::Warning);
    }

    #[test]
    fn l2cap_disconn_on_stream_is_benign() {
        let mut bt = BtStack::with_bugs(BtBugs { l2cap_disconn_warn: true, ..Default::default() });
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 1, btproto::L2CAP).unwrap();
        bt.connect(&mut ctx(&mut g, &mut b, 1), 0x99).unwrap();
        bt.ioctl(&mut ctx(&mut g, &mut b, 1), L2CAP_DISCONN_REQ, &[]).unwrap();
        assert!(b.take().is_empty());
    }

    #[test]
    fn accept_unlink_uaf_fires_on_orphaned_child_use() {
        let mut bt = BtStack::with_bugs(BtBugs { accept_unlink_uaf: true, ..Default::default() });
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 1, btproto::L2CAP).unwrap();
        bt.bind(&mut ctx(&mut g, &mut b, 1), 0x1001).unwrap();
        bt.listen(&mut ctx(&mut g, &mut b, 1), 2).unwrap();
        bt.accept(&mut ctx(&mut g, &mut b, 1), 2).unwrap();
        // Parent freed first: child 2 becomes orphaned.
        bt.close(&mut ctx(&mut g, &mut b, 1));
        assert!(b.take().is_empty());
        // Plain teardown of the orphan is benign (exit path)…
        let mut bt2 = BtStack::with_bugs(BtBugs { accept_unlink_uaf: true, ..Default::default() });
        bt2.socket(&mut ctx(&mut g, &mut b, 1), 1, btproto::L2CAP).unwrap();
        bt2.bind(&mut ctx(&mut g, &mut b, 1), 0x1001).unwrap();
        bt2.listen(&mut ctx(&mut g, &mut b, 1), 2).unwrap();
        bt2.accept(&mut ctx(&mut g, &mut b, 1), 2).unwrap();
        bt2.close(&mut ctx(&mut g, &mut b, 1));
        bt2.close(&mut ctx(&mut g, &mut b, 2));
        assert!(b.take().is_empty());
        // …but *using* the orphan dereferences the freed parent link.
        let err = bt.write(&mut ctx(&mut g, &mut b, 2), &[1, 2, 3]);
        assert_eq!(err, Err(Errno::ECONNRESET));
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::KasanUseAfterFree);
        assert!(reports[0].title.contains("bt_accept_unlink"));
    }

    #[test]
    fn child_close_before_parent_is_benign() {
        let mut bt = BtStack::with_bugs(BtBugs { accept_unlink_uaf: true, ..Default::default() });
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 1, btproto::L2CAP).unwrap();
        bt.bind(&mut ctx(&mut g, &mut b, 1), 5).unwrap();
        bt.listen(&mut ctx(&mut g, &mut b, 1), 2).unwrap();
        bt.accept(&mut ctx(&mut g, &mut b, 1), 2).unwrap();
        bt.close(&mut ctx(&mut g, &mut b, 2));
        bt.close(&mut ctx(&mut g, &mut b, 1));
        assert!(b.take().is_empty());
        assert_eq!(bt.socket_count(), 0);
    }

    #[test]
    fn inquiry_feeds_deeper_connect_coverage() {
        let mut bt = BtStack::new();
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        // Blind connect first.
        bt.socket(&mut ctx(&mut g, &mut b, 1), 1, btproto::L2CAP).unwrap();
        bt.connect(&mut ctx(&mut g, &mut b, 1), 0xBDADD0).unwrap();
        let shallow = g.len();
        // Now the full sequence: HCI up, inquiry, connect to a discovered
        // address on a fresh socket.
        bt.socket(&mut ctx(&mut g, &mut b, 2), 3, btproto::HCI).unwrap();
        bt.bind(&mut ctx(&mut g, &mut b, 2), 0).unwrap();
        load_fw(&mut bt, &mut g, &mut b, 2);
        let up = crate::driver::encode_words(&[0]);
        bt.ioctl(&mut ctx(&mut g, &mut b, 2), HCIDEVUP, &up).unwrap();
        let dur = crate::driver::encode_words(&[4]);
        bt.ioctl(&mut ctx(&mut g, &mut b, 2), HCIINQUIRY, &dur).unwrap();
        bt.socket(&mut ctx(&mut g, &mut b, 3), 1, btproto::L2CAP).unwrap();
        bt.connect(&mut ctx(&mut g, &mut b, 3), 0xBDADD0).unwrap();
        assert!(g.len() > shallow + 2, "full path reveals more blocks");
        assert!(b.take().is_empty());
    }

    #[test]
    fn mtu_validation() {
        let mut bt = BtStack::new();
        let mut g = CoverageMap::new();
        let mut b = BugSink::new();
        bt.socket(&mut ctx(&mut g, &mut b, 1), 1, btproto::L2CAP).unwrap();
        let bad = crate::driver::encode_words(&[10]);
        assert_eq!(
            bt.ioctl(&mut ctx(&mut g, &mut b, 1), L2CAP_SET_MTU, &bad),
            Err(Errno::EINVAL)
        );
        let good = crate::driver::encode_words(&[2048]);
        assert_eq!(bt.ioctl(&mut ctx(&mut g, &mut b, 1), L2CAP_SET_MTU, &good), Ok(0));
    }
}
