//! DRM/KMS-style display driver at `/dev/dri0` — the kernel side of the
//! Graphics (composer) HAL.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;
use std::collections::BTreeMap;

/// Set the display mode (`arg[0]` = width, `arg[1]` = height, `arg[2]` = Hz).
pub const DRM_MODE_SET: u32 = 0x400C_6401;
/// Create a framebuffer (`arg[0]` = ION share token); returns an fb id.
pub const DRM_CREATE_FB: u32 = 0x4004_6402;
/// Destroy a framebuffer (`arg[0]` = fb id).
pub const DRM_DESTROY_FB: u32 = 0x4004_6403;
/// Queue a page flip to fb `arg[0]`.
pub const DRM_PAGE_FLIP: u32 = 0x4004_6404;
/// Commit `arg[0]` planes with flags `arg[1]`.
pub const DRM_PLANE_COMMIT: u32 = 0x4008_6405;
/// Wait for vblank.
pub const DRM_WAIT_VBLANK: u32 = 0x4004_6406;

/// Supported mode list (w, h, hz).
pub const MODES: [(u32, u32, u32); 4] =
    [(1920, 1080, 60), (1280, 720, 60), (3840, 2160, 30), (800, 480, 60)];

/// Maximum hardware planes.
pub const MAX_PLANES: u32 = 8;

/// Declarative state machine of the display controller. Framebuffer ids
/// are minted monotonically, so the model distinguishes `Mode0` (mode
/// set, fb id 1 still unminted) from `ModeN` (mode set, no live fbs but
/// ids spent): only from `Mode0` does `DRM_CREATE_FB` provably return fb
/// id 1, making the follow-up `DRM_PAGE_FLIP(1)` a guaranteed deep edge.
/// `DRM_CREATE_FB` consumes the ION share token — the second
/// cross-driver prior edge next to the GPU import path.
fn drm_state_model() -> StateModel {
    let mut t = vec![
        Transition::ioctl(DRM_CREATE_FB)
            .guard(WordGuard::MaskEq(0xFFFF_0000, super::ion::SHARE_TAG))
            .from(&["Mode0"])
            .to("MF1")
            .consumes("ion:token")
            .produces("drm:fb"),
        Transition::ioctl(DRM_CREATE_FB)
            .guard(WordGuard::MaskEq(0xFFFF_0000, super::ion::SHARE_TAG))
            .from(&["ModeN", "MF1"])
            .to("MFX")
            .consumes("ion:token"),
        Transition::ioctl(DRM_CREATE_FB)
            .guard(WordGuard::MaskEq(0xFFFF_0000, super::ion::SHARE_TAG))
            .from(&["MFX"])
            .may_fail(),
        Transition::ioctl(DRM_DESTROY_FB).guard(WordGuard::Eq(1)).from(&["MF1"]).to("ModeN"),
        Transition::ioctl(DRM_DESTROY_FB).from(&["MFX"]).to("ModeN").may_fail(),
        Transition::ioctl(DRM_PAGE_FLIP).guard(WordGuard::Eq(1)).from(&["MF1"]),
        Transition::ioctl(DRM_PAGE_FLIP).from(&["MFX"]).may_fail(),
        Transition::ioctl(DRM_PLANE_COMMIT)
            .guard(WordGuard::Eq(1))
            .from(&["MF1", "MFX"]),
        Transition::ioctl(DRM_PLANE_COMMIT)
            .guard(WordGuard::In(2, MAX_PLANES))
            .from(&["MFX"])
            .may_fail(),
        Transition::ioctl(DRM_WAIT_VBLANK).from(&["Mode0", "ModeN", "MF1", "MFX"]),
        Transition::mmap().from(&["MF1", "MFX"]),
    ];
    for (w, h, hz) in MODES {
        t.push(
            Transition::ioctl(DRM_MODE_SET)
                .guard(WordGuard::Eq(w))
                .guard(WordGuard::Eq(h))
                .guard(WordGuard::Eq(hz))
                .from(&["Boot"])
                .to("Mode0"),
        );
        t.push(
            Transition::ioctl(DRM_MODE_SET)
                .guard(WordGuard::Eq(w))
                .guard(WordGuard::Eq(h))
                .guard(WordGuard::Eq(hz))
                .from(&["Mode0", "ModeN", "MF1", "MFX"]),
        );
    }
    StateModel::new("Boot", &["Boot", "Mode0", "ModeN", "MF1", "MFX"])
        .close_clobbers()
        .with(t)
}

/// The display driver.
#[derive(Debug, Default)]
pub struct DrmDevice {
    mode: Option<(u32, u32, u32)>,
    /// fb id → owning open file.
    fbs: BTreeMap<u32, u64>,
    next_fb: u32,
    flips: u64,
    commits: u64,
}

impl DrmDevice {
    /// Creates a display controller with no mode set.
    pub fn new() -> Self {
        Self {
            next_fb: 1,
            ..Self::default()
        }
    }

    /// Live framebuffer count.
    pub fn framebuffers(&self) -> usize {
        self.fbs.len()
    }
}

impl CharDevice for DrmDevice {
    fn name(&self) -> &str {
        "drm"
    }

    fn node(&self) -> String {
        "/dev/dri0".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "DRM_MODE_SET",
                    DRM_MODE_SET,
                    vec![
                        WordShape::Choice(MODES.iter().map(|m| m.0).collect()),
                        WordShape::Choice(MODES.iter().map(|m| m.1).collect()),
                        WordShape::Choice(vec![30, 60]),
                    ],
                ),
                IoctlDesc::with_words("DRM_CREATE_FB", DRM_CREATE_FB, vec![WordShape::Any]),
                IoctlDesc::with_words(
                    "DRM_DESTROY_FB",
                    DRM_DESTROY_FB,
                    vec![WordShape::Range { min: 1, max: 32 }],
                ),
                IoctlDesc::with_words(
                    "DRM_PAGE_FLIP",
                    DRM_PAGE_FLIP,
                    vec![WordShape::Range { min: 1, max: 32 }],
                ),
                IoctlDesc::with_words(
                    "DRM_PLANE_COMMIT",
                    DRM_PLANE_COMMIT,
                    vec![
                        WordShape::Range { min: 1, max: MAX_PLANES },
                        WordShape::Flags(vec![0x1, 0x2, 0x4]),
                    ],
                ),
                IoctlDesc::bare("DRM_WAIT_VBLANK", DRM_WAIT_VBLANK),
            ],
            supports_read: false,
            supports_write: false,
            supports_mmap: true,
            vendor: false,
            state_model: Some(drm_state_model()),
        }
    }

    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
        self.fbs.retain(|_, owner| *owner != ctx.open_id);
    }

    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        if self.fbs.is_empty() {
            return Err(Errno::EINVAL);
        }
        ctx.hit(&[7, len as u64 / 4096, u64::from(prot)]);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            DRM_MODE_SET => {
                let m = (word(arg, 0), word(arg, 1), word(arg, 2));
                if !MODES.contains(&m) {
                    return Err(Errno::EINVAL);
                }
                self.mode = Some(m);
                ctx.hit(&[1, u64::from(m.0) / 640, u64::from(m.2)]);
                Ok(IoctlOut::Val(0))
            }
            DRM_CREATE_FB => {
                let token = word(arg, 0);
                if token & 0xFFFF_0000 != super::ion::SHARE_TAG {
                    return Err(Errno::EINVAL);
                }
                if self.mode.is_none() {
                    return Err(Errno::EINVAL);
                }
                if self.fbs.len() >= 32 {
                    return Err(Errno::ENOMEM);
                }
                let id = self.next_fb;
                self.next_fb += 1;
                self.fbs.insert(id, ctx.open_id);
                ctx.hit(&[2, self.fbs.len().min(2) as u64]);
                Ok(IoctlOut::Val(u64::from(id)))
            }
            DRM_DESTROY_FB => {
                let id = word(arg, 0);
                if self.fbs.remove(&id).is_none() {
                    return Err(Errno::ENOENT);
                }
                ctx.hit(&[3, self.fbs.len().min(2) as u64]);
                Ok(IoctlOut::Val(0))
            }
            DRM_PAGE_FLIP => {
                let id = word(arg, 0);
                if !self.fbs.contains_key(&id) {
                    return Err(Errno::ENOENT);
                }
                self.flips += 1;
                ctx.hit_path(3, &[4, self.flips.min(8)]);
                Ok(IoctlOut::Val(self.flips))
            }
            DRM_PLANE_COMMIT => {
                let planes = word(arg, 0);
                let flags = word(arg, 1) & 0x7;
                if planes == 0 || planes > MAX_PLANES {
                    return Err(Errno::EINVAL);
                }
                if (planes as usize) > self.fbs.len() {
                    return Err(Errno::EINVAL);
                }
                self.commits += 1;
                ctx.hit_path(4, &[5, u64::from(planes), u64::from(flags), self.commits.min(6)]);
                Ok(IoctlOut::Val(self.commits))
            }
            DRM_WAIT_VBLANK => {
                if self.mode.is_none() {
                    return Err(Errno::EINVAL);
                }
                ctx.hit(&[6, self.flips.min(4)]);
                Ok(IoctlOut::Val(0))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::drivers::ion::SHARE_TAG;
    use crate::report::BugSink;

    fn run(
        dev: &mut DrmDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x800, "drm", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn fb_requires_mode_and_share_token() {
        let mut dev = DrmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, DRM_CREATE_FB, &[SHARE_TAG | 1]).unwrap_err(),
            Errno::EINVAL,
            "no mode set yet"
        );
        run(&mut dev, &mut g, &mut b, DRM_MODE_SET, &[1920, 1080, 60]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, DRM_CREATE_FB, &[0x42]).unwrap_err(),
            Errno::EINVAL,
            "bad token"
        );
        let IoctlOut::Val(fb) =
            run(&mut dev, &mut g, &mut b, DRM_CREATE_FB, &[SHARE_TAG | 1]).unwrap()
        else {
            panic!()
        };
        run(&mut dev, &mut g, &mut b, DRM_PAGE_FLIP, &[fb as u32]).unwrap();
        run(&mut dev, &mut g, &mut b, DRM_WAIT_VBLANK, &[]).unwrap();
    }

    #[test]
    fn commit_bounded_by_planes_and_fbs() {
        let mut dev = DrmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, DRM_MODE_SET, &[1280, 720, 60]).unwrap();
        run(&mut dev, &mut g, &mut b, DRM_CREATE_FB, &[SHARE_TAG | 1]).unwrap();
        run(&mut dev, &mut g, &mut b, DRM_CREATE_FB, &[SHARE_TAG | 2]).unwrap();
        run(&mut dev, &mut g, &mut b, DRM_PLANE_COMMIT, &[2, 1]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, DRM_PLANE_COMMIT, &[3, 1]).unwrap_err(),
            Errno::EINVAL
        );
        assert_eq!(
            run(&mut dev, &mut g, &mut b, DRM_PLANE_COMMIT, &[9, 1]).unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn destroy_unknown_fb_is_enoent() {
        let mut dev = DrmDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, DRM_DESTROY_FB, &[5]).unwrap_err(),
            Errno::ENOENT
        );
    }
}
