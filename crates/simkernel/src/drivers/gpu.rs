//! Mali-style GPU driver at `/dev/gpu0`.
//!
//! Carries Table II bug **#3** (device A1): importing a dma-buf chain
//! deeper than the lockdep subclass limit raises
//! `BUG: looking up invalid subclass: NUM` in the locking subsystem.
//! Reaching it requires a context, a valid ION share token
//! ([`super::ion::SHARE_TAG`]), and an import chain of depth
//! [`SUBCLASS_LIMIT`] — the cross-driver flow the Graphics HAL performs
//! when composing many layers.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;
use std::collections::BTreeMap;

/// Create a GPU context; returns a context id.
pub const GPU_CREATE_CTX: u32 = 0x4004_4701;
/// Destroy a context (`arg[0]`).
pub const GPU_DESTROY_CTX: u32 = 0x4004_4702;
/// Import a shared buffer (`arg[0]` = ctx, `arg[1]` = ION share token,
/// `arg[2]` = parent import id or 0); returns an import id.
pub const GPU_IMPORT: u32 = 0x400C_4703;
/// Submit a job (`arg[0]` = ctx, `arg[1]` = flags, `arg[2]` = buffer count).
pub const GPU_SUBMIT: u32 = 0x400C_4704;
/// Wait on a fence (`arg[0]` = ctx, `arg[1]` = fence).
pub const GPU_WAIT: u32 = 0x4008_4705;
/// Read GPU utilization counters.
pub const GPU_GET_COUNTERS: u32 = 0x8004_4706;

/// Maximum lockdep subclass; import chains of this depth trip bug #3.
pub const SUBCLASS_LIMIT: u32 = 8;

/// Declarative state machine of the GPU:
///
/// - `Boot`: no context has ever been created (ids unspent);
/// - `C1`: exactly context 1 is live with no imports;
/// - `C1I`: context 1 is live and holds import 1 at chain depth 1;
/// - `Busy`: at least one context is live but details are untracked;
/// - `NoCtx`: no context is live, ids spent.
///
/// Import chains with `parent ≥ 1` from any imprecise state are hazards:
/// an adversarial parent choice can reach [`SUBCLASS_LIMIT`] and raise
/// the fatal bug #3, so the interpreter stops trusting success after
/// them. `close` releases the owner's contexts, so the model clobbers.
fn gpu_state_model() -> StateModel {
    let tag = || WordGuard::MaskEq(0xFFFF_0000, super::ion::SHARE_TAG);
    StateModel::new("Boot", &["Boot", "C1", "C1I", "Busy", "NoCtx"])
        .close_clobbers()
        .with(vec![
            Transition::ioctl(GPU_CREATE_CTX).from(&["Boot"]).to("C1").produces("gpu:ctx"),
            Transition::ioctl(GPU_CREATE_CTX)
                .from(&["C1", "C1I", "NoCtx"])
                .to("Busy")
                .produces("gpu:ctx"),
            Transition::ioctl(GPU_CREATE_CTX).from(&["Busy"]).may_fail(),
            Transition::ioctl(GPU_DESTROY_CTX)
                .guard(WordGuard::Eq(1))
                .from(&["C1", "C1I"])
                .to("NoCtx"),
            Transition::ioctl(GPU_DESTROY_CTX).from(&["Busy"]).to("NoCtx").may_fail(),
            // Depth-1 imports are always safe; deeper chains from states
            // whose import depths are unknown can trip bug #3.
            Transition::ioctl(GPU_IMPORT)
                .guard(WordGuard::Eq(1))
                .guard(tag())
                .guard(WordGuard::Eq(0))
                .from(&["C1"])
                .to("C1I")
                .consumes("ion:token")
                .produces("gpu:import"),
            Transition::ioctl(GPU_IMPORT)
                .guard(WordGuard::Eq(1))
                .guard(tag())
                .guard(WordGuard::Eq(0))
                .from(&["C1I"])
                .consumes("ion:token"),
            Transition::ioctl(GPU_IMPORT)
                .guard(WordGuard::Eq(1))
                .guard(tag())
                .guard(WordGuard::Eq(1))
                .from(&["C1I"])
                .consumes("ion:token"),
            Transition::ioctl(GPU_IMPORT)
                .guard(WordGuard::Eq(1))
                .guard(tag())
                .guard(WordGuard::In(2, u32::MAX))
                .from(&["C1I"])
                .may_fail()
                .hazard(),
            Transition::ioctl(GPU_IMPORT)
                .guard(WordGuard::Any)
                .guard(tag())
                .guard(WordGuard::Eq(0))
                .from(&["Busy"])
                .may_fail(),
            Transition::ioctl(GPU_IMPORT)
                .guard(WordGuard::Any)
                .guard(tag())
                .guard(WordGuard::In(1, u32::MAX))
                .from(&["Busy"])
                .may_fail()
                .hazard(),
            Transition::ioctl(GPU_SUBMIT)
                .guard(WordGuard::Eq(1))
                .guard(WordGuard::Any)
                .guard(WordGuard::Eq(0))
                .from(&["C1", "C1I"]),
            Transition::ioctl(GPU_SUBMIT)
                .guard(WordGuard::Eq(1))
                .guard(WordGuard::Any)
                .guard(WordGuard::Eq(1))
                .from(&["C1I"]),
            Transition::ioctl(GPU_SUBMIT)
                .guard(WordGuard::Eq(1))
                .guard(WordGuard::Any)
                .guard(WordGuard::In(2, u32::MAX))
                .from(&["C1I"])
                .may_fail(),
            Transition::ioctl(GPU_SUBMIT).from(&["Busy"]).may_fail(),
            Transition::ioctl(GPU_WAIT)
                .guard(WordGuard::Eq(1))
                .guard(WordGuard::Eq(0))
                .from(&["C1", "C1I"]),
            Transition::ioctl(GPU_WAIT)
                .guard(WordGuard::Eq(1))
                .guard(WordGuard::In(1, u32::MAX))
                .from(&["C1", "C1I"])
                .may_fail(),
            Transition::ioctl(GPU_WAIT).from(&["Busy"]).may_fail(),
            Transition::ioctl(GPU_GET_COUNTERS),
            Transition::mmap().from(&["C1", "C1I", "Busy"]),
        ])
}

/// Which injected GPU bugs the firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuBugs {
    /// Bug #3 (device A1).
    pub subclass_bug: bool,
}

#[derive(Debug)]
struct GpuContext {
    /// import id → chain depth.
    imports: BTreeMap<u32, u32>,
    submits: u64,
    /// Open file that created the context.
    owner: u64,
}

/// The GPU driver.
#[derive(Debug)]
pub struct GpuDevice {
    armed: GpuBugs,
    contexts: BTreeMap<u32, GpuContext>,
    next_ctx: u32,
    next_import: u32,
}

impl GpuDevice {
    /// Creates a GPU with the given bugs armed.
    pub fn new(armed: GpuBugs) -> Self {
        Self {
            armed,
            contexts: BTreeMap::new(),
            next_ctx: 1,
            next_import: 1,
        }
    }

    /// Number of live contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }
}

impl CharDevice for GpuDevice {
    fn name(&self) -> &str {
        "gpu"
    }

    fn node(&self) -> String {
        "/dev/gpu0".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::bare("GPU_CREATE_CTX", GPU_CREATE_CTX),
                IoctlDesc::with_words(
                    "GPU_DESTROY_CTX",
                    GPU_DESTROY_CTX,
                    vec![WordShape::Range { min: 1, max: 16 }],
                ),
                IoctlDesc::with_words(
                    "GPU_IMPORT",
                    GPU_IMPORT,
                    vec![
                        WordShape::Range { min: 1, max: 16 },
                        WordShape::Any,
                        WordShape::Range { min: 0, max: 256 },
                    ],
                ),
                IoctlDesc::with_words(
                    "GPU_SUBMIT",
                    GPU_SUBMIT,
                    vec![
                        WordShape::Range { min: 1, max: 16 },
                        WordShape::Flags(vec![0x1, 0x2, 0x4, 0x8]),
                        WordShape::Range { min: 0, max: 64 },
                    ],
                ),
                IoctlDesc::with_words(
                    "GPU_WAIT",
                    GPU_WAIT,
                    vec![WordShape::Range { min: 1, max: 16 }, WordShape::Any],
                ),
                IoctlDesc::bare("GPU_GET_COUNTERS", GPU_GET_COUNTERS),
            ],
            supports_read: false,
            supports_write: false,
            supports_mmap: true,
            vendor: true,
            state_model: Some(gpu_state_model()),
        }
    }

    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
        self.contexts.retain(|_, c| c.owner != ctx.open_id);
    }

    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        if self.contexts.is_empty() {
            return Err(Errno::EINVAL);
        }
        ctx.hit(&[6, len as u64 / 4096, u64::from(prot)]);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            GPU_CREATE_CTX => {
                if self.contexts.len() >= 16 {
                    return Err(Errno::ENOMEM);
                }
                let id = self.next_ctx;
                self.next_ctx += 1;
                self.contexts.insert(
                    id,
                    GpuContext { imports: BTreeMap::new(), submits: 0, owner: ctx.open_id },
                );
                ctx.hit(&[1, self.contexts.len() as u64]);
                Ok(IoctlOut::Val(u64::from(id)))
            }
            GPU_DESTROY_CTX => {
                let id = word(arg, 0);
                match self.contexts.remove(&id) {
                    Some(c) => {
                        ctx.hit(&[2, c.imports.len().min(8) as u64, c.submits.min(4)]);
                        Ok(IoctlOut::Val(0))
                    }
                    None => Err(Errno::ENOENT),
                }
            }
            GPU_IMPORT => {
                let ctx_id = word(arg, 0);
                let token = word(arg, 1);
                let parent = word(arg, 2);
                if token & 0xFFFF_0000 != super::ion::SHARE_TAG {
                    return Err(Errno::EINVAL);
                }
                let armed = self.armed.subclass_bug;
                let import_id = self.next_import;
                let Some(gpu_ctx) = self.contexts.get_mut(&ctx_id) else {
                    return Err(Errno::ENOENT);
                };
                let depth = if parent == 0 {
                    1
                } else {
                    match gpu_ctx.imports.get(&parent) {
                        Some(d) => d + 1,
                        None => return Err(Errno::ENOENT),
                    }
                };
                self.next_import += 1;
                gpu_ctx.imports.insert(import_id, depth);
                ctx.hit_path(3, &[3, u64::from(depth.min(SUBCLASS_LIMIT + 1)), u64::from(token & 0xF)]);
                if depth >= SUBCLASS_LIMIT {
                    // Bug #3: each nested import takes the reservation lock
                    // with subclass = depth; lockdep only has 8 subclasses.
                    if armed {
                        ctx.bug_msg("BUG: looking up invalid subclass: NUM");
                    }
                    return Err(Errno::EINVAL);
                }
                Ok(IoctlOut::Val(u64::from(import_id)))
            }
            GPU_SUBMIT => {
                let ctx_id = word(arg, 0);
                let flags = word(arg, 1) & 0xF;
                let nbuf = word(arg, 2);
                let Some(gpu_ctx) = self.contexts.get_mut(&ctx_id) else {
                    return Err(Errno::ENOENT);
                };
                if nbuf as usize > gpu_ctx.imports.len() {
                    return Err(Errno::EINVAL);
                }
                gpu_ctx.submits += 1;
                let submits = gpu_ctx.submits.min(6);
                ctx.hit_path(4, &[4, u64::from(flags), u64::from(nbuf.min(8)), submits]);
                Ok(IoctlOut::Val(gpu_ctx.submits))
            }
            GPU_WAIT => {
                let ctx_id = word(arg, 0);
                let fence = word(arg, 1);
                let Some(gpu_ctx) = self.contexts.get(&ctx_id) else {
                    return Err(Errno::ENOENT);
                };
                if u64::from(fence) > gpu_ctx.submits {
                    return Err(Errno::EAGAIN);
                }
                ctx.hit(&[5, u64::from(fence).min(6)]);
                Ok(IoctlOut::Val(0))
            }
            GPU_GET_COUNTERS => {
                ctx.hit(&[7, self.contexts.len() as u64]);
                Ok(IoctlOut::Val(self.contexts.values().map(|c| c.submits).sum()))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::drivers::ion::SHARE_TAG;
    use crate::report::{BugKind, BugSink};

    fn run(
        dev: &mut GpuDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x600, "gpu", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    fn chain_import(
        dev: &mut GpuDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        ctx_id: u32,
        depth: u32,
    ) -> Result<u32, Errno> {
        let token = SHARE_TAG | 1;
        let mut parent = 0u32;
        for _ in 0..depth {
            let out = run(dev, g, b, GPU_IMPORT, &[ctx_id, token, parent])?;
            let IoctlOut::Val(id) = out else { panic!() };
            parent = id as u32;
        }
        Ok(parent)
    }

    #[test]
    fn bug3_deep_import_chain_hits_subclass_limit() {
        let mut dev = GpuDevice::new(GpuBugs { subclass_bug: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(ctx_id) = run(&mut dev, &mut g, &mut b, GPU_CREATE_CTX, &[]).unwrap()
        else {
            panic!()
        };
        let err = chain_import(&mut dev, &mut g, &mut b, ctx_id as u32, SUBCLASS_LIMIT);
        assert_eq!(err.unwrap_err(), Errno::EINVAL);
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::Bug);
        assert_eq!(reports[0].title, "BUG: looking up invalid subclass: NUM");
    }

    #[test]
    fn shallow_chains_are_benign() {
        let mut dev = GpuDevice::new(GpuBugs { subclass_bug: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(ctx_id) = run(&mut dev, &mut g, &mut b, GPU_CREATE_CTX, &[]).unwrap()
        else {
            panic!()
        };
        chain_import(&mut dev, &mut g, &mut b, ctx_id as u32, SUBCLASS_LIMIT - 1).unwrap();
        assert!(b.take().is_empty());
    }

    #[test]
    fn import_requires_share_tag_and_context() {
        let mut dev = GpuDevice::new(GpuBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, GPU_IMPORT, &[1, 0x1234, 0]).unwrap_err(),
            Errno::EINVAL,
            "token without share tag rejected"
        );
        assert_eq!(
            run(&mut dev, &mut g, &mut b, GPU_IMPORT, &[1, SHARE_TAG | 1, 0]).unwrap_err(),
            Errno::ENOENT,
            "no such context"
        );
    }

    #[test]
    fn submit_validates_buffer_count() {
        let mut dev = GpuDevice::new(GpuBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(ctx_id) = run(&mut dev, &mut g, &mut b, GPU_CREATE_CTX, &[]).unwrap()
        else {
            panic!()
        };
        assert_eq!(
            run(&mut dev, &mut g, &mut b, GPU_SUBMIT, &[ctx_id as u32, 1, 5]).unwrap_err(),
            Errno::EINVAL,
            "more buffers than imports"
        );
        run(&mut dev, &mut g, &mut b, GPU_SUBMIT, &[ctx_id as u32, 1, 0]).unwrap();
        run(&mut dev, &mut g, &mut b, GPU_WAIT, &[ctx_id as u32, 1]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, GPU_WAIT, &[ctx_id as u32, 9]).unwrap_err(),
            Errno::EAGAIN
        );
    }

    #[test]
    fn destroy_ctx_frees_imports() {
        let mut dev = GpuDevice::new(GpuBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(ctx_id) = run(&mut dev, &mut g, &mut b, GPU_CREATE_CTX, &[]).unwrap()
        else {
            panic!()
        };
        chain_import(&mut dev, &mut g, &mut b, ctx_id as u32, 3).unwrap();
        run(&mut dev, &mut g, &mut b, GPU_DESTROY_CTX, &[ctx_id as u32]).unwrap();
        assert_eq!(dev.context_count(), 0);
    }
}
