//! Generic I²C adapter at `/dev/i2c-<N>`.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Raw transfer (`arg[0]` = 7-bit address, `arg[1]` = length, `arg[2]` = dir).
pub const I2C_XFER: u32 = 0x400C_6901;
/// SMBus quick command (`arg[0]` = address).
pub const I2C_SMBUS_QUICK: u32 = 0x4004_6902;
/// Set bus speed (`arg[0]` = Hz).
pub const I2C_SET_SPEED: u32 = 0x4004_6903;

/// Addresses with a simulated peripheral behind them.
pub const PRESENT_ADDRS: [u32; 4] = [0x1C, 0x36, 0x50, 0x68];

/// Declarative state machine of the adapter — stateless: transfers to a
/// present peripheral with a legal length always succeed.
fn i2c_state_model() -> StateModel {
    StateModel::new("Ready", &["Ready"]).with(vec![
        Transition::ioctl(I2C_XFER)
            .guard(WordGuard::OneOf(PRESENT_ADDRS.to_vec()))
            .guard(WordGuard::In(1, 32))
            .guard(WordGuard::In(0, 1)),
        Transition::ioctl(I2C_SMBUS_QUICK).guard(WordGuard::In(0, 0x7f)),
        Transition::ioctl(I2C_SET_SPEED)
            .guard(WordGuard::OneOf(vec![100_000, 400_000, 1_000_000])),
    ])
}

/// The I²C adapter driver.
#[derive(Debug)]
pub struct I2cDevice {
    index: u32,
    speed: u32,
    xfers: u64,
}

impl I2cDevice {
    /// Creates adapter `/dev/i2c-<index>` at 100 kHz.
    pub fn new(index: u32) -> Self {
        Self {
            index,
            speed: 100_000,
            xfers: 0,
        }
    }
}

impl CharDevice for I2cDevice {
    fn name(&self) -> &str {
        "i2c"
    }

    fn node(&self) -> String {
        format!("/dev/i2c-{}", self.index)
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "I2C_XFER",
                    I2C_XFER,
                    vec![
                        WordShape::Choice(PRESENT_ADDRS.to_vec()),
                        WordShape::Range { min: 1, max: 32 },
                        WordShape::Choice(vec![0, 1]),
                    ],
                ),
                IoctlDesc::with_words(
                    "I2C_SMBUS_QUICK",
                    I2C_SMBUS_QUICK,
                    vec![WordShape::Range { min: 0, max: 0x7f }],
                ),
                IoctlDesc::with_words(
                    "I2C_SET_SPEED",
                    I2C_SET_SPEED,
                    vec![WordShape::Choice(vec![100_000, 400_000, 1_000_000])],
                ),
            ],
            supports_read: false,
            supports_write: false,
            supports_mmap: false,
            vendor: false,
            state_model: Some(i2c_state_model()),
        }
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            I2C_XFER => {
                let addr = word(arg, 0);
                let len = word(arg, 1);
                let dir = word(arg, 2);
                if addr > 0x7f || dir > 1 {
                    return Err(Errno::EINVAL);
                }
                if !(1..=32).contains(&len) {
                    return Err(Errno::EINVAL);
                }
                if !PRESENT_ADDRS.contains(&addr) {
                    ctx.hit(&[1, 0, u64::from(addr) / 16]);
                    return Err(Errno::ENXIO);
                }
                self.xfers += 1;
                ctx.hit(&[1, 1, u64::from(addr), u64::from(dir), u64::from(len) / 8]);
                if dir == 1 {
                    Ok(IoctlOut::Out(vec![0x5A; len as usize]))
                } else {
                    Ok(IoctlOut::Val(u64::from(len)))
                }
            }
            I2C_SMBUS_QUICK => {
                let addr = word(arg, 0);
                if addr > 0x7f {
                    return Err(Errno::EINVAL);
                }
                let present = PRESENT_ADDRS.contains(&addr);
                ctx.hit(&[2, u64::from(present)]);
                Ok(IoctlOut::Val(u64::from(present)))
            }
            I2C_SET_SPEED => {
                let hz = word(arg, 0);
                if ![100_000, 400_000, 1_000_000].contains(&hz) {
                    return Err(Errno::EINVAL);
                }
                self.speed = hz;
                ctx.hit(&[3, u64::from(hz) / 100_000]);
                Ok(IoctlOut::Val(0))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    fn run(dev: &mut I2cDevice, req: u32, words: &[u32]) -> Result<IoctlOut, Errno> {
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0xA00, "i2c", None, &mut g, &mut b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn xfer_to_present_device_succeeds() {
        let mut dev = I2cDevice::new(0);
        let out = run(&mut dev, I2C_XFER, &[0x50, 8, 1]).unwrap();
        assert_eq!(out, IoctlOut::Out(vec![0x5A; 8]));
    }

    #[test]
    fn xfer_to_absent_device_is_enxio() {
        let mut dev = I2cDevice::new(0);
        assert_eq!(run(&mut dev, I2C_XFER, &[0x22, 8, 0]).unwrap_err(), Errno::ENXIO);
    }

    #[test]
    fn smbus_quick_probes_presence() {
        let mut dev = I2cDevice::new(1);
        assert_eq!(run(&mut dev, I2C_SMBUS_QUICK, &[0x68]).unwrap(), IoctlOut::Val(1));
        assert_eq!(run(&mut dev, I2C_SMBUS_QUICK, &[0x01]).unwrap(), IoctlOut::Val(0));
    }
}
