//! evdev-style input device at `/dev/input<N>`.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Query supported event bits (`arg[0]` = event type).
pub const EVIOCGBIT: u32 = 0x8004_4502;
/// Grab (`arg[0]` = 1) / release (`arg[0]` = 0) the device.
pub const EVIOCGRAB: u32 = 0x4004_4590;
/// Query device identity.
pub const EVIOCGID: u32 = 0x8008_4502;

/// Declarative state machine of the grab flag. The flag lives on the
/// device (not the open file), so the model is device-global: a second
/// client's grab changes what this fd may do.
fn input_state_model() -> StateModel {
    StateModel::new("Released", &["Released", "Grabbed"]).with(vec![
        Transition::ioctl(EVIOCGBIT).guard(WordGuard::In(0, 5)),
        Transition::ioctl(EVIOCGRAB)
            .guard(WordGuard::Eq(1))
            .from(&["Released"])
            .to("Grabbed"),
        Transition::ioctl(EVIOCGRAB)
            .guard(WordGuard::Eq(0))
            .from(&["Grabbed"])
            .to("Released"),
        Transition::ioctl(EVIOCGID),
        Transition::read().guard(WordGuard::In(8, u32::MAX)),
    ])
}

/// The input driver.
#[derive(Debug)]
pub struct InputDevice {
    index: u32,
    grabbed: bool,
    events: u64,
}

impl InputDevice {
    /// Creates `/dev/input<index>`.
    pub fn new(index: u32) -> Self {
        Self {
            index,
            grabbed: false,
            events: 0,
        }
    }
}

impl CharDevice for InputDevice {
    fn name(&self) -> &str {
        "input"
    }

    fn node(&self) -> String {
        format!("/dev/input{}", self.index)
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "EVIOCGBIT",
                    EVIOCGBIT,
                    vec![WordShape::Range { min: 0, max: 5 }],
                ),
                IoctlDesc::with_words("EVIOCGRAB", EVIOCGRAB, vec![WordShape::Choice(vec![0, 1])]),
                IoctlDesc::bare("EVIOCGID", EVIOCGID),
            ],
            supports_read: true,
            supports_write: false,
            supports_mmap: false,
            vendor: false,
            state_model: Some(input_state_model()),
        }
    }

    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        if len < 8 {
            return Err(Errno::EINVAL);
        }
        self.events += 1;
        ctx.hit(&[1, u64::from(self.grabbed), self.events.min(8)]);
        Ok(vec![0u8; 8])
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            EVIOCGBIT => {
                let ty = word(arg, 0);
                if ty > 5 {
                    return Err(Errno::EINVAL);
                }
                ctx.hit(&[2, u64::from(ty)]);
                Ok(IoctlOut::Val(0x3 << ty))
            }
            EVIOCGRAB => {
                let grab = word(arg, 0);
                match (self.grabbed, grab) {
                    (false, 1) => self.grabbed = true,
                    (true, 0) => self.grabbed = false,
                    (true, 1) => return Err(Errno::EBUSY),
                    (false, 0) => return Err(Errno::EINVAL),
                    _ => return Err(Errno::EINVAL),
                }
                ctx.hit(&[3, u64::from(grab)]);
                Ok(IoctlOut::Val(0))
            }
            EVIOCGID => {
                ctx.hit(&[4]);
                Ok(IoctlOut::Out(vec![0x18, 0x27, self.index as u8, 1]))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    #[test]
    fn grab_release_cycle() {
        let mut dev = InputDevice::new(0);
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0, "input", None, &mut g, &mut b, 1);
        dev.ioctl(&mut ctx, EVIOCGRAB, &encode_words(&[1])).unwrap();
        assert_eq!(
            dev.ioctl(&mut ctx, EVIOCGRAB, &encode_words(&[1])).unwrap_err(),
            Errno::EBUSY
        );
        dev.ioctl(&mut ctx, EVIOCGRAB, &encode_words(&[0])).unwrap();
    }

    #[test]
    fn short_read_rejected() {
        let mut dev = InputDevice::new(0);
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0, "input", None, &mut g, &mut b, 1);
        assert_eq!(dev.read(&mut ctx, 4).unwrap_err(), Errno::EINVAL);
        assert_eq!(dev.read(&mut ctx, 16).unwrap().len(), 8);
    }
}
