//! ION-style memory allocator at `/dev/ion`.
//!
//! Produces buffer *handles* that the GPU driver imports — the cross-driver
//! resource flow that gates Table II bug #3 (in the GPU driver). Shared
//! handles carry a magic tag ([`SHARE_TAG`]) that random generation is
//! unlikely to synthesize, so reaching the deep import path requires a
//! correct `ION_ALLOC → ION_SHARE → GPU_IMPORT` chain.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;
use std::collections::BTreeMap;

/// Allocate a buffer (`arg[0]` = length, `arg[1]` = heap mask, `arg[2]` =
/// flags); returns a handle id.
pub const ION_ALLOC: u32 = 0x4010_4900;
/// Free a handle (`arg[0]`).
pub const ION_FREE: u32 = 0x4004_4901;
/// Produce a shareable token for a handle (`arg[0]`); returns the token.
pub const ION_SHARE: u32 = 0x4004_4902;
/// Query heap information.
pub const ION_QUERY_HEAPS: u32 = 0x8004_4903;

/// High-bits tag embedded in shared-handle tokens.
pub const SHARE_TAG: u32 = 0x494F_0000;

/// Supported heap masks.
pub const HEAPS: [u32; 3] = [0x1, 0x2, 0x4];

/// Declarative state machine of the allocator:
///
/// - `Boot`: no buffer has ever been allocated (handle 1 unspent);
/// - `H1`: exactly handle 1 is live;
/// - `Live`: at least one buffer is live, set untracked;
/// - `Empty`: no buffer is live, handles spent.
///
/// `ION_SHARE` on handle 1 mints the tagged token the GPU and DRM
/// drivers consume — the cross-driver edge the relation-graph prior is
/// seeded with. `close` frees the client's buffers, so the model
/// clobbers.
fn ion_state_model() -> StateModel {
    StateModel::new("Boot", &["Boot", "H1", "Live", "Empty"])
        .close_clobbers()
        .with(vec![
            Transition::ioctl(ION_ALLOC)
                .guard(WordGuard::In(1, 1 << 24))
                .guard(WordGuard::OneOf(HEAPS.to_vec()))
                .from(&["Boot"])
                .to("H1")
                .produces("ion:buffer"),
            Transition::ioctl(ION_ALLOC)
                .guard(WordGuard::In(1, 1 << 24))
                .guard(WordGuard::OneOf(HEAPS.to_vec()))
                .from(&["H1", "Empty"])
                .to("Live")
                .produces("ion:buffer"),
            Transition::ioctl(ION_ALLOC)
                .guard(WordGuard::In(1, 1 << 24))
                .guard(WordGuard::OneOf(HEAPS.to_vec()))
                .from(&["Live"])
                .may_fail(),
            Transition::ioctl(ION_FREE).guard(WordGuard::Eq(1)).from(&["H1"]).to("Empty"),
            Transition::ioctl(ION_FREE).from(&["Live"]).to("Empty").may_fail(),
            Transition::ioctl(ION_SHARE)
                .guard(WordGuard::Eq(1))
                .from(&["H1"])
                .produces("ion:token"),
            Transition::ioctl(ION_SHARE).from(&["Live"]).may_fail(),
            Transition::ioctl(ION_QUERY_HEAPS),
            Transition::mmap().from(&["H1", "Live"]),
        ])
}

#[derive(Debug, Clone, Copy)]
struct IonBuffer {
    len: u32,
    heap: u32,
    flags: u32,
    shared: bool,
    /// Open file that allocated the buffer (ION clients are per-fd).
    owner: u64,
}

/// The ION allocator driver.
#[derive(Debug, Default)]
pub struct IonDevice {
    buffers: BTreeMap<u32, IonBuffer>,
    next_handle: u32,
}

impl IonDevice {
    /// Creates an allocator with no buffers.
    pub fn new() -> Self {
        Self {
            buffers: BTreeMap::new(),
            next_handle: 1,
        }
    }

    /// Whether `token` is a share token minted by [`ION_SHARE`], and for a
    /// still-live shared buffer. The GPU driver validates imports with this.
    pub fn is_valid_share_token(&self, token: u32) -> bool {
        if token & 0xFFFF_0000 != SHARE_TAG {
            return false;
        }
        let handle = token & 0xFFFF;
        self.buffers.get(&handle).map(|b| b.shared) == Some(true)
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.buffers.len()
    }
}

impl CharDevice for IonDevice {
    fn name(&self) -> &str {
        "ion"
    }

    fn node(&self) -> String {
        "/dev/ion".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "ION_ALLOC",
                    ION_ALLOC,
                    vec![
                        WordShape::Range { min: 4096, max: 1 << 24 },
                        WordShape::Choice(HEAPS.to_vec()),
                        WordShape::Flags(vec![0x1, 0x2]),
                    ],
                ),
                IoctlDesc::with_words(
                    "ION_FREE",
                    ION_FREE,
                    vec![WordShape::Range { min: 1, max: 64 }],
                ),
                IoctlDesc::with_words(
                    "ION_SHARE",
                    ION_SHARE,
                    vec![WordShape::Range { min: 1, max: 64 }],
                ),
                IoctlDesc::bare("ION_QUERY_HEAPS", ION_QUERY_HEAPS),
            ],
            supports_read: false,
            supports_write: false,
            supports_mmap: true,
            vendor: true,
            state_model: Some(ion_state_model()),
        }
    }

    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
        // Client teardown frees its allocations (invalidating share
        // tokens), like dropping an ION client.
        self.buffers.retain(|_, b| b.owner != ctx.open_id);
    }

    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        if self.buffers.is_empty() {
            return Err(Errno::EINVAL);
        }
        ctx.hit(&[5, len as u64 / 4096, u64::from(prot)]);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            ION_ALLOC => {
                let len = word(arg, 0);
                let heap = word(arg, 1);
                let flags = word(arg, 2);
                if len == 0 || len > (1 << 24) {
                    return Err(Errno::EINVAL);
                }
                if !HEAPS.contains(&heap) {
                    return Err(Errno::EINVAL);
                }
                if self.buffers.len() >= 64 {
                    return Err(Errno::ENOMEM);
                }
                let handle = self.next_handle;
                self.next_handle = self.next_handle % 0xFFFF + 1;
                self.buffers.insert(
                    handle,
                    IonBuffer { len, heap, flags, shared: false, owner: ctx.open_id },
                );
                ctx.hit_path(2, &[1, u64::from(heap), u64::from(flags), u64::from(len) / (1 << 20)]);
                Ok(IoctlOut::Val(u64::from(handle)))
            }
            ION_FREE => {
                let handle = word(arg, 0);
                match self.buffers.remove(&handle) {
                    Some(buf) => {
                        ctx.hit(&[2, u64::from(buf.heap), u64::from(buf.shared), u64::from(buf.flags)]);
                        Ok(IoctlOut::Val(0))
                    }
                    None => Err(Errno::ENOENT),
                }
            }
            ION_SHARE => {
                let handle = word(arg, 0);
                match self.buffers.get_mut(&handle) {
                    Some(buf) => {
                        buf.shared = true;
                        ctx.hit_path(2, &[3, u64::from(buf.heap), u64::from(buf.len) / (1 << 20)]);
                        Ok(IoctlOut::Val(u64::from(SHARE_TAG | (handle & 0xFFFF))))
                    }
                    None => Err(Errno::ENOENT),
                }
            }
            ION_QUERY_HEAPS => {
                ctx.hit(&[4, self.buffers.len().min(8) as u64]);
                Ok(IoctlOut::Val(HEAPS.len() as u64))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    fn run(
        dev: &mut IonDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x500, "ion", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn alloc_share_token_validates() {
        let mut dev = IonDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(handle) =
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[8192, 1, 0]).unwrap()
        else {
            panic!()
        };
        let IoctlOut::Val(token) =
            run(&mut dev, &mut g, &mut b, ION_SHARE, &[handle as u32]).unwrap()
        else {
            panic!()
        };
        assert!(dev.is_valid_share_token(token as u32));
        assert!(!dev.is_valid_share_token(handle as u32), "raw handle is not a token");
        assert!(!dev.is_valid_share_token(0xdead_beef));
    }

    #[test]
    fn unshared_handle_token_is_invalid() {
        let mut dev = IonDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(handle) =
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[4096, 2, 0]).unwrap()
        else {
            panic!()
        };
        assert!(!dev.is_valid_share_token(SHARE_TAG | handle as u32 & 0xFFFF_0000));
    }

    #[test]
    fn free_invalidates_share_token() {
        let mut dev = IonDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let IoctlOut::Val(handle) =
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[4096, 1, 1]).unwrap()
        else {
            panic!()
        };
        let IoctlOut::Val(token) =
            run(&mut dev, &mut g, &mut b, ION_SHARE, &[handle as u32]).unwrap()
        else {
            panic!()
        };
        run(&mut dev, &mut g, &mut b, ION_FREE, &[handle as u32]).unwrap();
        assert!(!dev.is_valid_share_token(token as u32));
        assert_eq!(dev.live_buffers(), 0);
    }

    #[test]
    fn alloc_validates_heap_and_len() {
        let mut dev = IonDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[4096, 8, 0]).unwrap_err(),
            Errno::EINVAL
        );
        assert_eq!(
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[0, 1, 0]).unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn alloc_limit_is_enforced() {
        let mut dev = IonDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        for _ in 0..64 {
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[4096, 1, 0]).unwrap();
        }
        assert_eq!(
            run(&mut dev, &mut g, &mut b, ION_ALLOC, &[4096, 1, 0]).unwrap_err(),
            Errno::ENOMEM
        );
    }
}
