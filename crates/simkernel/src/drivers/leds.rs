//! LED-class driver at `/dev/leds` — the kernel side of the Lights HAL.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Set brightness (`arg[0]` = led id, `arg[1]` = 0..=255).
pub const LED_SET_BRIGHTNESS: u32 = 0x4008_4C01;
/// Set blink pattern (`arg[0]` = led, `arg[1]` = on ms, `arg[2]` = off ms).
pub const LED_SET_BLINK: u32 = 0x400C_4C02;
/// Read brightness (`arg[0]` = led id).
pub const LED_GET_BRIGHTNESS: u32 = 0x4004_4C03;

/// Number of LEDs.
pub const LED_COUNT: u32 = 3;

/// Declarative state machine of the LED bank — stateless from the
/// caller's perspective: every in-range call succeeds from the single
/// `Ready` state.
fn leds_state_model() -> StateModel {
    let led = WordGuard::In(0, LED_COUNT - 1);
    StateModel::new("Ready", &["Ready"]).with(vec![
        Transition::ioctl(LED_SET_BRIGHTNESS)
            .guard(led.clone())
            .guard(WordGuard::In(0, 255)),
        Transition::ioctl(LED_SET_BLINK)
            .guard(led.clone())
            .guard(WordGuard::In(50, 5000))
            .guard(WordGuard::In(50, 5000)),
        Transition::ioctl(LED_GET_BRIGHTNESS).guard(led),
    ])
}

/// The LED driver.
#[derive(Debug, Default)]
pub struct LedsDevice {
    brightness: [u32; LED_COUNT as usize],
    blinking: [bool; LED_COUNT as usize],
}

impl LedsDevice {
    /// Creates the LED bank, all off.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CharDevice for LedsDevice {
    fn name(&self) -> &str {
        "leds"
    }

    fn node(&self) -> String {
        "/dev/leds".into()
    }

    fn api(&self) -> DriverApi {
        let led = WordShape::Range { min: 0, max: LED_COUNT - 1 };
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "LED_SET_BRIGHTNESS",
                    LED_SET_BRIGHTNESS,
                    vec![led.clone(), WordShape::Range { min: 0, max: 255 }],
                ),
                IoctlDesc::with_words(
                    "LED_SET_BLINK",
                    LED_SET_BLINK,
                    vec![
                        led.clone(),
                        WordShape::Range { min: 50, max: 5000 },
                        WordShape::Range { min: 50, max: 5000 },
                    ],
                ),
                IoctlDesc::with_words("LED_GET_BRIGHTNESS", LED_GET_BRIGHTNESS, vec![led]),
            ],
            supports_read: false,
            supports_write: false,
            supports_mmap: false,
            vendor: false,
            state_model: Some(leds_state_model()),
        }
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let led = word(arg, 0);
        if led >= LED_COUNT {
            return Err(Errno::EINVAL);
        }
        match request {
            LED_SET_BRIGHTNESS => {
                let level = word(arg, 1);
                if level > 255 {
                    return Err(Errno::EINVAL);
                }
                self.brightness[led as usize] = level;
                self.blinking[led as usize] = false;
                ctx.hit(&[1, u64::from(led), u64::from(level) / 64]);
                Ok(IoctlOut::Val(0))
            }
            LED_SET_BLINK => {
                let (on, off) = (word(arg, 1), word(arg, 2));
                if !(50..=5000).contains(&on) || !(50..=5000).contains(&off) {
                    return Err(Errno::EINVAL);
                }
                self.blinking[led as usize] = true;
                ctx.hit(&[2, u64::from(led), u64::from(on) / 1000, u64::from(off) / 1000]);
                Ok(IoctlOut::Val(0))
            }
            LED_GET_BRIGHTNESS => {
                ctx.hit(&[3, u64::from(led), u64::from(self.blinking[led as usize])]);
                Ok(IoctlOut::Val(u64::from(self.brightness[led as usize])))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    #[test]
    fn set_and_get_brightness() {
        let mut dev = LedsDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0, "leds", None, &mut g, &mut b, 1);
        dev.ioctl(&mut ctx, LED_SET_BRIGHTNESS, &encode_words(&[1, 128])).unwrap();
        assert_eq!(
            dev.ioctl(&mut ctx, LED_GET_BRIGHTNESS, &encode_words(&[1])).unwrap(),
            IoctlOut::Val(128)
        );
        assert_eq!(
            dev.ioctl(&mut ctx, LED_SET_BRIGHTNESS, &encode_words(&[7, 1])).unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn blink_validates_periods() {
        let mut dev = LedsDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0, "leds", None, &mut g, &mut b, 1);
        assert_eq!(
            dev.ioctl(&mut ctx, LED_SET_BLINK, &encode_words(&[0, 10, 500])).unwrap_err(),
            Errno::EINVAL
        );
        dev.ioctl(&mut ctx, LED_SET_BLINK, &encode_words(&[0, 500, 500])).unwrap();
    }
}
