//! Vendor driver implementations.
//!
//! Each driver is a stateful state machine that emits coverage blocks
//! derived from its state (see [`crate::coverage`]) and carries the
//! injected, state-gated defects of the paper's Table II. Which defects are
//! *armed* is decided per device by the firmware spec (`simdevice` crate).

pub mod audio;
pub mod bt;
pub mod drm;
pub mod gpu;
pub mod i2c;
pub mod input;
pub mod ion;
pub mod leds;
pub mod sensorhub;
pub mod tcpc;
pub mod thermal;
pub mod v4l2;
pub mod vcodec;
pub mod wlan;
