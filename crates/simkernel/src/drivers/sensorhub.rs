//! Vendor sensor-hub driver at `/dev/sensorhub`.
//!
//! Carries Table II bug **#5** (device A2): the calibration loop spins
//! forever when asked for continuous-mode calibration with a zero step
//! size, tripping the soft-lockup watchdog.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Activate sensor (`arg[0]` = sensor id, `arg[1]` = 0/1).
pub const SH_ACTIVATE: u32 = 0x4008_5301;
/// Set sampling delay (`arg[0]` = sensor id, `arg[1]` = delay µs).
pub const SH_SET_DELAY: u32 = 0x4008_5302;
/// Run calibration (`arg[0]` = mode, `arg[1]` = step).
pub const SH_CALIBRATE: u32 = 0x4008_5303;
/// Read one event (scalar timestamp returned).
pub const SH_READ_EVENT: u32 = 0x8004_5304;
/// Flush a sensor's FIFO (`arg[0]` = sensor id).
pub const SH_FLUSH: u32 = 0x4004_5305;
/// Query firmware version.
pub const SH_GET_VERSION: u32 = 0x8004_5306;

/// One-shot calibration mode.
pub const CAL_ONESHOT: u32 = 1;
/// Continuous calibration mode (the buggy path when `step == 0`).
pub const CAL_CONTINUOUS: u32 = 2;

/// Number of simulated sensors on the hub.
pub const SENSOR_COUNT: u32 = 6;

/// Declarative state machine of the hub, tracking the activation mask
/// coarsely:
///
/// - `Off`: every sensor inactive (boot);
/// - `A0`: sensor 0 is active, the rest untracked;
/// - `AX`: at least one sensor is active, identities untracked.
///
/// Continuous calibration with a zero step is the hazard transition —
/// armed firmware spins into the soft-lockup watchdog (bug #5), so the
/// interpreter stops trusting success claims after one. With step ≥ 1
/// it converges well inside the per-call watchdog budget.
fn sensorhub_state_model() -> StateModel {
    let id = || WordGuard::In(0, SENSOR_COUNT - 1);
    StateModel::new("Off", &["Off", "A0", "AX"]).with(vec![
        Transition::ioctl(SH_ACTIVATE).guard(id()).guard(WordGuard::Eq(0)).from(&["Off"]),
        Transition::ioctl(SH_ACTIVATE)
            .guard(WordGuard::Eq(0))
            .guard(WordGuard::Eq(1))
            .from(&["Off"])
            .to("A0"),
        Transition::ioctl(SH_ACTIVATE)
            .guard(WordGuard::In(1, SENSOR_COUNT - 1))
            .guard(WordGuard::Eq(1))
            .from(&["Off"])
            .to("AX"),
        Transition::ioctl(SH_ACTIVATE).guard(id()).guard(WordGuard::Eq(1)).from(&["A0", "AX"]),
        Transition::ioctl(SH_ACTIVATE)
            .guard(WordGuard::In(1, SENSOR_COUNT - 1))
            .guard(WordGuard::Eq(0))
            .from(&["A0"]),
        // Deactivation from a coarse state may empty the mask.
        Transition::ioctl(SH_ACTIVATE)
            .guard(WordGuard::Eq(0))
            .guard(WordGuard::Eq(0))
            .from(&["A0"])
            .to("Off")
            .may_fail(),
        Transition::ioctl(SH_ACTIVATE)
            .guard(id())
            .guard(WordGuard::Eq(0))
            .from(&["AX"])
            .to("Off")
            .may_fail(),
        Transition::ioctl(SH_SET_DELAY).guard(id()).guard(WordGuard::In(1000, 1_000_000)),
        Transition::ioctl(SH_CALIBRATE).guard(WordGuard::Eq(CAL_ONESHOT)),
        Transition::ioctl(SH_CALIBRATE)
            .guard(WordGuard::Eq(CAL_CONTINUOUS))
            .guard(WordGuard::In(1, u32::MAX)),
        Transition::ioctl(SH_CALIBRATE)
            .guard(WordGuard::Eq(CAL_CONTINUOUS))
            .guard(WordGuard::Eq(0))
            .may_fail()
            .hazard(),
        Transition::ioctl(SH_READ_EVENT).from(&["A0", "AX"]),
        Transition::ioctl(SH_FLUSH).guard(WordGuard::Eq(0)).from(&["A0"]),
        Transition::ioctl(SH_FLUSH)
            .guard(WordGuard::In(1, SENSOR_COUNT - 1))
            .from(&["A0"])
            .may_fail(),
        Transition::ioctl(SH_FLUSH).guard(id()).from(&["AX"]).may_fail(),
        Transition::ioctl(SH_GET_VERSION),
        Transition::read().from(&["A0", "AX"]),
    ])
}

/// Which injected sensor-hub bugs the firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorHubBugs {
    /// Bug #5 (device A2): infinite calibration loop.
    pub calibration_lockup: bool,
}

/// The sensor-hub driver.
#[derive(Debug)]
pub struct SensorHubDevice {
    armed: SensorHubBugs,
    active: [bool; SENSOR_COUNT as usize],
    delay_us: [u32; SENSOR_COUNT as usize],
    calibrated: [bool; SENSOR_COUNT as usize],
    events_read: u64,
}

impl SensorHubDevice {
    /// Creates a hub with the given bugs armed.
    pub fn new(armed: SensorHubBugs) -> Self {
        Self {
            armed,
            active: [false; SENSOR_COUNT as usize],
            delay_us: [66_667; SENSOR_COUNT as usize],
            calibrated: [false; SENSOR_COUNT as usize],
            events_read: 0,
        }
    }

    fn active_mask(&self) -> u64 {
        self.active
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &a)| m | (u64::from(a) << i))
    }
}

impl CharDevice for SensorHubDevice {
    fn name(&self) -> &str {
        "sensorhub"
    }

    fn node(&self) -> String {
        "/dev/sensorhub".into()
    }

    fn api(&self) -> DriverApi {
        let sensor_id = WordShape::Range { min: 0, max: SENSOR_COUNT - 1 };
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "SH_ACTIVATE",
                    SH_ACTIVATE,
                    vec![sensor_id.clone(), WordShape::Choice(vec![0, 1])],
                ),
                IoctlDesc::with_words(
                    "SH_SET_DELAY",
                    SH_SET_DELAY,
                    vec![sensor_id.clone(), WordShape::Range { min: 1000, max: 1_000_000 }],
                ),
                IoctlDesc::with_words(
                    "SH_CALIBRATE",
                    SH_CALIBRATE,
                    vec![
                        WordShape::Choice(vec![CAL_ONESHOT, CAL_CONTINUOUS]),
                        WordShape::Range { min: 0, max: 64 },
                    ],
                ),
                IoctlDesc::bare("SH_READ_EVENT", SH_READ_EVENT),
                IoctlDesc::with_words("SH_FLUSH", SH_FLUSH, vec![sensor_id]),
                IoctlDesc::bare("SH_GET_VERSION", SH_GET_VERSION),
            ],
            supports_read: true,
            supports_write: false,
            supports_mmap: false,
            vendor: true,
            state_model: Some(sensorhub_state_model()),
        }
    }

    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        if self.active_mask() == 0 {
            return Err(Errno::EAGAIN);
        }
        self.events_read += 1;
        let n = len.min(16);
        ctx.hit(&[1, self.active_mask(), self.events_read.min(8), n as u64 / 4]);
        Ok(vec![0u8; n])
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            SH_ACTIVATE => {
                let id = word(arg, 0);
                let on = word(arg, 1);
                if id >= SENSOR_COUNT || on > 1 {
                    return Err(Errno::EINVAL);
                }
                self.active[id as usize] = on == 1;
                ctx.hit(&[2, u64::from(id), u64::from(on), self.active_mask()]);
                Ok(IoctlOut::Val(0))
            }
            SH_SET_DELAY => {
                let id = word(arg, 0);
                let delay = word(arg, 1);
                if id >= SENSOR_COUNT {
                    return Err(Errno::EINVAL);
                }
                if !(1000..=1_000_000).contains(&delay) {
                    return Err(Errno::EINVAL);
                }
                self.delay_us[id as usize] = delay;
                ctx.hit(&[3, u64::from(id), u64::from(delay) / 100_000]);
                Ok(IoctlOut::Val(0))
            }
            SH_CALIBRATE => {
                let mode = word(arg, 0);
                let step = word(arg, 1);
                match mode {
                    CAL_ONESHOT => {
                        ctx.hit(&[4, 1, u64::from(step).min(16)]);
                        for c in &mut self.calibrated {
                            *c = true;
                        }
                        Ok(IoctlOut::Val(1))
                    }
                    CAL_CONTINUOUS => {
                        ctx.hit(&[4, 2, u64::from(step).min(16)]);
                        if step == 0 {
                            if self.armed.calibration_lockup {
                                // Bug #5: convergence never advances with a
                                // zero step; spin until the watchdog fires.
                                while ctx.spin(64) {}
                                return Err(Errno::EINTR);
                            }
                            return Err(Errno::EINVAL);
                        }
                        // Converges after step-dependent iterations.
                        let iters = (256 / u64::from(step)).max(1);
                        if !ctx.spin(iters) {
                            return Err(Errno::EINTR);
                        }
                        for c in &mut self.calibrated {
                            *c = true;
                        }
                        ctx.hit_path(4, &[4, 3, iters.min(16)]);
                        Ok(IoctlOut::Val(iters))
                    }
                    _ => Err(Errno::EINVAL),
                }
            }
            SH_READ_EVENT => {
                if self.active_mask() == 0 {
                    return Err(Errno::EAGAIN);
                }
                self.events_read += 1;
                let calibrated = self.calibrated.iter().filter(|&&c| c).count() as u64;
                ctx.hit_path(3, &[5, self.active_mask(), calibrated]);
                Ok(IoctlOut::Val(self.events_read))
            }
            SH_FLUSH => {
                let id = word(arg, 0);
                if id >= SENSOR_COUNT {
                    return Err(Errno::EINVAL);
                }
                if !self.active[id as usize] {
                    return Err(Errno::ENODEV);
                }
                ctx.hit(&[6, u64::from(id)]);
                Ok(IoctlOut::Val(0))
            }
            SH_GET_VERSION => {
                ctx.hit(&[7]);
                Ok(IoctlOut::Out(vec![2, 1, 0, 0]))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::{BugKind, BugSink};

    fn run(
        dev: &mut SensorHubDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x200, "sensorhub", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn bug5_zero_step_continuous_calibration_locks_up() {
        let mut dev = SensorHubDevice::new(SensorHubBugs { calibration_lockup: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, SH_CALIBRATE, &[CAL_CONTINUOUS, 0]).unwrap_err(),
            Errno::EINTR
        );
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::SoftLockup);
        assert!(reports[0].title.contains("sensorhub"));
    }

    #[test]
    fn zero_step_is_rejected_when_unarmed() {
        let mut dev = SensorHubDevice::new(SensorHubBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, SH_CALIBRATE, &[CAL_CONTINUOUS, 0]).unwrap_err(),
            Errno::EINVAL
        );
        assert!(b.take().is_empty());
    }

    #[test]
    fn continuous_calibration_with_step_converges() {
        let mut dev = SensorHubDevice::new(SensorHubBugs { calibration_lockup: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let out = run(&mut dev, &mut g, &mut b, SH_CALIBRATE, &[CAL_CONTINUOUS, 8]).unwrap();
        assert_eq!(out, IoctlOut::Val(32));
        assert!(b.take().is_empty());
    }

    #[test]
    fn read_requires_an_active_sensor() {
        let mut dev = SensorHubDevice::new(SensorHubBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, SH_READ_EVENT, &[]).unwrap_err(),
            Errno::EAGAIN
        );
        run(&mut dev, &mut g, &mut b, SH_ACTIVATE, &[2, 1]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, SH_READ_EVENT, &[]).unwrap(),
            IoctlOut::Val(1)
        );
    }

    #[test]
    fn delay_bounds_are_enforced() {
        let mut dev = SensorHubDevice::new(SensorHubBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, SH_SET_DELAY, &[0, 10]).unwrap_err(),
            Errno::EINVAL
        );
        run(&mut dev, &mut g, &mut b, SH_SET_DELAY, &[0, 5000]).unwrap();
    }

    #[test]
    fn flush_inactive_sensor_is_enodev() {
        let mut dev = SensorHubDevice::new(SensorHubBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, SH_FLUSH, &[1]).unwrap_err(),
            Errno::ENODEV
        );
    }
}
