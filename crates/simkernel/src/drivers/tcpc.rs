//! USB Type-C port controller (TCPC) driver with an RT1711-style I²C chip
//! behind it, mounted at `/dev/tcpc0`.
//!
//! Carries Table II bugs **#1** (`WARNING in rt1711_i2c_probe` — re-probing
//! the chip while an I²C transfer error is latched) and **#4**
//! (`WARNING in tcpc_pr_swap` — power-role swap attempted while the port is
//! unattached but VBUS is driven).

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Set CC line pull (`arg[0]`: 0 = open, 1 = Rd, 2 = Rp1.5, 3 = Rp3.0).
pub const TCPC_SET_CC: u32 = 0x4004_5401;
/// Drive or release VBUS (`arg[0]`: 0/1).
pub const TCPC_VBUS: u32 = 0x4004_5402;
/// Begin attach as sink (1) or source (2).
pub const TCPC_ATTACH: u32 = 0x4004_5403;
/// Detach the port.
pub const TCPC_DETACH: u32 = 0x4004_5404;
/// Power-role swap.
pub const TCPC_PR_SWAP: u32 = 0x4004_5405;
/// Re-run chip probe (recovery path).
pub const TCPC_RESET_PROBE: u32 = 0x4004_5406;
/// Read port status.
pub const TCPC_GET_STATUS: u32 = 0x8004_5407;
/// Raw I²C register transfer (`arg[0]` = register, `arg[1]` = length).
pub const TCPC_I2C_XFER: u32 = 0x4008_5408;
/// VCONN enable/disable.
pub const TCPC_VCONN: u32 = 0x4004_5409;
/// Simulated alert interrupt (`arg[0]` = alert mask).
pub const TCPC_ALERT: u32 = 0x4004_540A;

/// Declarative state machine of the port controller, tracking the
/// `(attach state, cc, vbus)` triple through the precisely-modeled region
/// of the state space:
///
/// - `Boot`/`BootV`: unattached, cc open, vbus off/on;
/// - `Cc1`/`Cc1V`: unattached, Rd pull on CC, vbus off/on;
/// - `Wait`/`WaitV`: AttachWait.SNK, vbus off/on;
/// - `Snk`/`Src`: attached as sink/source (cc = Rd, vbus on).
///
/// `SET_CC` pulls ≥ 2 (the source path) and vbus/cc changes while
/// attached leave the precise region via `may_fail` clobber transitions;
/// bad-length `I2C_XFER` does the same because it latches the hidden
/// `i2c_error` flag that `RESET_PROBE` trips over.
fn tcpc_state_model() -> StateModel {
    const UNATTACHED: &[&str] = &["Boot", "BootV", "Cc1", "Cc1V"];
    StateModel::new("Boot", &["Boot", "BootV", "Cc1", "Cc1V", "Wait", "WaitV", "Snk", "Src"])
        .with(vec![
            // SET_CC(1): install the Rd pull; attach state untouched.
            Transition::ioctl(TCPC_SET_CC).guard(WordGuard::Eq(1)).from(&["Boot"]).to("Cc1"),
            Transition::ioctl(TCPC_SET_CC).guard(WordGuard::Eq(1)).from(&["BootV"]).to("Cc1V"),
            Transition::ioctl(TCPC_SET_CC)
                .guard(WordGuard::Eq(1))
                .from(&["Cc1", "Cc1V", "Wait", "WaitV", "Snk", "Src"]),
            // SET_CC(0): release the pull.
            Transition::ioctl(TCPC_SET_CC).guard(WordGuard::Eq(0)).from(&["Boot", "BootV"]),
            Transition::ioctl(TCPC_SET_CC).guard(WordGuard::Eq(0)).from(&["Cc1"]).to("Boot"),
            Transition::ioctl(TCPC_SET_CC).guard(WordGuard::Eq(0)).from(&["Cc1V"]).to("BootV"),
            Transition::ioctl(TCPC_SET_CC)
                .guard(WordGuard::Eq(0))
                .from(&["Wait", "WaitV", "Snk", "Src"])
                .to("Boot")
                .may_fail(),
            // SET_CC(2|3): the source-pull region is not tracked.
            Transition::ioctl(TCPC_SET_CC).guard(WordGuard::In(2, 3)).to("Boot").may_fail(),
            // VBUS on/off.
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(1)).from(&["Boot"]).to("BootV"),
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(1)).from(&["Cc1"]).to("Cc1V"),
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(1)).from(&["Wait"]).to("WaitV"),
            Transition::ioctl(TCPC_VBUS)
                .guard(WordGuard::Eq(1))
                .from(&["BootV", "Cc1V", "WaitV", "Snk", "Src"]),
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(0)).from(&["Boot", "Cc1", "Wait"]),
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(0)).from(&["BootV"]).to("Boot"),
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(0)).from(&["Cc1V"]).to("Cc1"),
            Transition::ioctl(TCPC_VBUS).guard(WordGuard::Eq(0)).from(&["WaitV"]).to("Wait"),
            Transition::ioctl(TCPC_VBUS)
                .guard(WordGuard::Eq(0))
                .from(&["Snk", "Src"])
                .to("Boot")
                .may_fail(),
            // ATTACH as sink: needs the pull, completes on vbus.
            Transition::ioctl(TCPC_ATTACH).guard(WordGuard::Eq(1)).from(&["Cc1"]).to("Wait"),
            Transition::ioctl(TCPC_ATTACH).guard(WordGuard::Eq(1)).from(&["Cc1V"]).to("Snk"),
            Transition::ioctl(TCPC_ATTACH).guard(WordGuard::Eq(1)).from(&["WaitV"]).to("Snk"),
            // DETACH: back to unattached; cc/vbus survive.
            Transition::ioctl(TCPC_DETACH).from(UNATTACHED),
            Transition::ioctl(TCPC_DETACH).from(&["Wait"]).to("Cc1"),
            Transition::ioctl(TCPC_DETACH).from(&["WaitV", "Snk", "Src"]).to("Cc1V"),
            // Power-role swap between the attached states.
            Transition::ioctl(TCPC_PR_SWAP).from(&["Snk"]).to("Src"),
            Transition::ioctl(TCPC_PR_SWAP).from(&["Src"]).to("Snk"),
            // Probe recovery succeeds whenever no I²C error is latched,
            // which the precise region guarantees.
            Transition::ioctl(TCPC_RESET_PROBE),
            Transition::ioctl(TCPC_GET_STATUS),
            // Well-formed I²C transfers are stateless; zero/oversized
            // lengths latch the hidden error flag even though the call
            // itself fails.
            Transition::ioctl(TCPC_I2C_XFER)
                .guard(WordGuard::In(0, 0xff))
                .guard(WordGuard::In(1, 32)),
            Transition::ioctl(TCPC_I2C_XFER)
                .guard(WordGuard::In(0, 0xff))
                .guard(WordGuard::Eq(0))
                .to("Boot")
                .may_fail(),
            Transition::ioctl(TCPC_I2C_XFER)
                .guard(WordGuard::In(0, 0xff))
                .guard(WordGuard::In(33, u32::MAX))
                .to("Boot")
                .may_fail(),
            // VCONN: off always works, on needs the source role.
            Transition::ioctl(TCPC_VCONN).guard(WordGuard::Eq(0)),
            Transition::ioctl(TCPC_VCONN).guard(WordGuard::Eq(1)).from(&["Src"]),
            // Alert interrupt: the 0x10 bit forces a detach.
            Transition::ioctl(TCPC_ALERT).guard(WordGuard::MaskEq(0x10, 0)),
            Transition::ioctl(TCPC_ALERT).guard(WordGuard::MaskEq(0x10, 0x10)).from(UNATTACHED),
            Transition::ioctl(TCPC_ALERT)
                .guard(WordGuard::MaskEq(0x10, 0x10))
                .from(&["Wait"])
                .to("Cc1"),
            Transition::ioctl(TCPC_ALERT)
                .guard(WordGuard::MaskEq(0x10, 0x10))
                .from(&["WaitV", "Snk", "Src"])
                .to("Cc1V"),
        ])
}

/// Which injected TCPC bugs the firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpcBugs {
    /// Bug #1 (device A1).
    pub probe_warn: bool,
    /// Bug #4 (device A1).
    pub pr_swap_warn: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortState {
    Unattached,
    AttachWaitSnk,
    AttachedSnk,
    AttachWaitSrc,
    AttachedSrc,
}

/// The TCPC driver.
#[derive(Debug)]
pub struct TcpcDevice {
    armed: TcpcBugs,
    state: PortState,
    cc: u32,
    vbus: bool,
    vconn: bool,
    /// Latched I²C failure from a bad raw transfer; cleared by detach.
    i2c_error: bool,
    probe_count: u32,
    swaps: u32,
}

impl TcpcDevice {
    /// Creates a port controller with the given bugs armed.
    pub fn new(armed: TcpcBugs) -> Self {
        Self {
            armed,
            state: PortState::Unattached,
            cc: 0,
            vbus: false,
            vconn: false,
            i2c_error: false,
            probe_count: 1,
            swaps: 0,
        }
    }

    fn state_tag(&self) -> u64 {
        self.state as u64
    }
}

impl CharDevice for TcpcDevice {
    fn name(&self) -> &str {
        "tcpc"
    }

    fn node(&self) -> String {
        "/dev/tcpc0".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "TCPC_SET_CC",
                    TCPC_SET_CC,
                    vec![WordShape::Choice(vec![0, 1, 2, 3])],
                ),
                IoctlDesc::with_words("TCPC_VBUS", TCPC_VBUS, vec![WordShape::Choice(vec![0, 1])]),
                IoctlDesc::with_words(
                    "TCPC_ATTACH",
                    TCPC_ATTACH,
                    vec![WordShape::Choice(vec![1, 2])],
                ),
                IoctlDesc::bare("TCPC_DETACH", TCPC_DETACH),
                IoctlDesc::bare("TCPC_PR_SWAP", TCPC_PR_SWAP),
                IoctlDesc::bare("TCPC_RESET_PROBE", TCPC_RESET_PROBE),
                IoctlDesc::bare("TCPC_GET_STATUS", TCPC_GET_STATUS),
                IoctlDesc::with_words(
                    "TCPC_I2C_XFER",
                    TCPC_I2C_XFER,
                    vec![
                        WordShape::Range { min: 0, max: 0xff },
                        WordShape::Range { min: 0, max: 64 },
                    ],
                ),
                IoctlDesc::with_words("TCPC_VCONN", TCPC_VCONN, vec![WordShape::Choice(vec![0, 1])]),
                IoctlDesc::with_words(
                    "TCPC_ALERT",
                    TCPC_ALERT,
                    vec![WordShape::Flags(vec![0x1, 0x2, 0x4, 0x8, 0x10])],
                ),
            ],
            supports_read: false,
            supports_write: false,
            supports_mmap: false,
            vendor: true,
            state_model: Some(tcpc_state_model()),
        }
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            TCPC_SET_CC => {
                let pull = word(arg, 0);
                if pull > 3 {
                    return Err(Errno::EINVAL);
                }
                self.cc = pull;
                ctx.hit(&[1, self.state_tag(), u64::from(pull)]);
                Ok(IoctlOut::Val(0))
            }
            TCPC_VBUS => {
                let on = word(arg, 0);
                if on > 1 {
                    return Err(Errno::EINVAL);
                }
                self.vbus = on == 1;
                ctx.hit(&[2, self.state_tag(), u64::from(on)]);
                Ok(IoctlOut::Val(0))
            }
            TCPC_ATTACH => {
                let mode = word(arg, 0);
                match (self.state, mode) {
                    (PortState::Unattached, 1) => {
                        // Sink attach requires a CC pull and VBUS present.
                        if self.cc == 0 {
                            return Err(Errno::EAGAIN);
                        }
                        self.state = if self.vbus {
                            PortState::AttachedSnk
                        } else {
                            PortState::AttachWaitSnk
                        };
                    }
                    (PortState::AttachWaitSnk, 1) => {
                        if !self.vbus {
                            return Err(Errno::EAGAIN);
                        }
                        self.state = PortState::AttachedSnk;
                    }
                    (PortState::Unattached, 2) => {
                        if self.cc < 2 {
                            return Err(Errno::EAGAIN);
                        }
                        self.state = PortState::AttachWaitSrc;
                    }
                    (PortState::AttachWaitSrc, 2) => {
                        if !self.vbus {
                            return Err(Errno::EAGAIN);
                        }
                        self.state = PortState::AttachedSrc;
                    }
                    (_, 1 | 2) => return Err(Errno::EBUSY),
                    _ => return Err(Errno::EINVAL),
                }
                ctx.hit_path(4, &[3, self.state_tag(), u64::from(mode), u64::from(self.cc)]);
                Ok(IoctlOut::Val(0))
            }
            TCPC_DETACH => {
                ctx.hit(&[4, self.state_tag()]);
                self.state = PortState::Unattached;
                self.i2c_error = false;
                self.vconn = false;
                Ok(IoctlOut::Val(0))
            }
            TCPC_PR_SWAP => {
                match self.state {
                    PortState::AttachedSnk => {
                        self.state = PortState::AttachedSrc;
                        self.swaps += 1;
                        ctx.hit_path(5, &[5, 0, self.swaps.min(4) as u64]);
                        Ok(IoctlOut::Val(0))
                    }
                    PortState::AttachedSrc => {
                        self.state = PortState::AttachedSnk;
                        self.swaps += 1;
                        ctx.hit_path(5, &[5, 1, self.swaps.min(4) as u64]);
                        Ok(IoctlOut::Val(0))
                    }
                    PortState::Unattached if self.vbus => {
                        // Bug #4: the swap state machine runs without an
                        // attached partner because VBUS masks the check.
                        ctx.hit(&[5, 2]);
                        if self.armed.pr_swap_warn {
                            ctx.warn("tcpc_pr_swap");
                        }
                        Err(Errno::EIO)
                    }
                    _ => Err(Errno::ENOTCONN),
                }
            }
            TCPC_RESET_PROBE => {
                self.probe_count += 1;
                ctx.hit(&[6, u64::from(self.i2c_error), self.probe_count.min(4) as u64]);
                if self.i2c_error {
                    // Bug #1: probe re-runs against a chip whose register
                    // map is stale after the failed transfer.
                    if self.armed.probe_warn {
                        ctx.warn("rt1711_i2c_probe");
                    }
                    return Err(Errno::EIO);
                }
                Ok(IoctlOut::Val(u64::from(self.probe_count)))
            }
            TCPC_GET_STATUS => {
                ctx.hit(&[7, self.state_tag(), u64::from(self.vbus), u64::from(self.vconn)]);
                let status = (self.state_tag() as u32) | (u32::from(self.vbus) << 8);
                Ok(IoctlOut::Out(status.to_le_bytes().to_vec()))
            }
            TCPC_I2C_XFER => {
                let reg = word(arg, 0);
                let len = word(arg, 1);
                if reg > 0xff {
                    return Err(Errno::EINVAL);
                }
                if len == 0 || len > 32 {
                    // Transfer rejected by the chip: latch the error the
                    // recovery probe trips over.
                    self.i2c_error = true;
                    ctx.hit(&[8, 0, u64::from(reg) / 32]);
                    return Err(Errno::EIO);
                }
                ctx.hit(&[8, 1, self.state_tag(), u64::from(reg) / 32, u64::from(len) / 8]);
                Ok(IoctlOut::Out(vec![0xA5; len as usize]))
            }
            TCPC_VCONN => {
                let on = word(arg, 0);
                if on > 1 {
                    return Err(Errno::EINVAL);
                }
                if on == 1 && !matches!(self.state, PortState::AttachedSrc) {
                    return Err(Errno::EPERM);
                }
                self.vconn = on == 1;
                ctx.hit_path(3, &[9, self.state_tag(), u64::from(on)]);
                Ok(IoctlOut::Val(0))
            }
            TCPC_ALERT => {
                let mask = word(arg, 0) & 0x1f;
                ctx.hit(&[10, self.state_tag(), u64::from(mask & 0x7), u64::from(mask >> 4)]);
                if mask & 0x10 != 0 && self.state != PortState::Unattached {
                    // Hard-reset alert detaches the port.
                    self.state = PortState::Unattached;
                    ctx.hit(&[10, 9]);
                }
                Ok(IoctlOut::Val(u64::from(mask)))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::{BugKind, BugSink};

    fn run(
        dev: &mut TcpcDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x100, "tcpc", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn attach_sequence_reaches_attached_sink() {
        let mut dev = TcpcDevice::new(TcpcBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, TCPC_SET_CC, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_VBUS, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_ATTACH, &[1]).unwrap();
        let out = run(&mut dev, &mut g, &mut b, TCPC_GET_STATUS, &[]).unwrap();
        let IoctlOut::Out(bytes) = out else { panic!("status returns bytes") };
        let status = u32::from_le_bytes(bytes.try_into().unwrap());
        assert_eq!(status & 0xff, PortState::AttachedSnk as u32);
        assert!(b.take().is_empty());
    }

    #[test]
    fn attach_without_cc_fails() {
        let mut dev = TcpcDevice::new(TcpcBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, TCPC_ATTACH, &[1]).unwrap_err(),
            Errno::EAGAIN
        );
    }

    #[test]
    fn bug1_probe_after_i2c_error_warns_when_armed() {
        let mut dev = TcpcDevice::new(TcpcBugs { probe_warn: true, ..Default::default() });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, TCPC_I2C_XFER, &[0x10, 0]).unwrap_err(),
            Errno::EIO
        );
        assert_eq!(
            run(&mut dev, &mut g, &mut b, TCPC_RESET_PROBE, &[]).unwrap_err(),
            Errno::EIO
        );
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].title, "WARNING in rt1711_i2c_probe");
    }

    #[test]
    fn bug1_sequence_is_benign_when_unarmed() {
        let mut dev = TcpcDevice::new(TcpcBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, TCPC_I2C_XFER, &[0x10, 0]).unwrap_err();
        run(&mut dev, &mut g, &mut b, TCPC_RESET_PROBE, &[]).unwrap_err();
        assert!(b.take().is_empty());
    }

    #[test]
    fn bug4_pr_swap_unattached_with_vbus_warns() {
        let mut dev = TcpcDevice::new(TcpcBugs { pr_swap_warn: true, ..Default::default() });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, TCPC_VBUS, &[1]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, TCPC_PR_SWAP, &[]).unwrap_err(),
            Errno::EIO
        );
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::Warning);
        assert!(reports[0].title.contains("tcpc"));
    }

    #[test]
    fn pr_swap_attached_toggles_roles() {
        let mut dev = TcpcDevice::new(TcpcBugs { pr_swap_warn: true, ..Default::default() });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, TCPC_SET_CC, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_VBUS, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_ATTACH, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_PR_SWAP, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_PR_SWAP, &[]).unwrap();
        assert!(b.take().is_empty());
    }

    #[test]
    fn detach_clears_i2c_error_latch() {
        let mut dev = TcpcDevice::new(TcpcBugs { probe_warn: true, ..Default::default() });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, TCPC_I2C_XFER, &[0x10, 0]).unwrap_err();
        run(&mut dev, &mut g, &mut b, TCPC_DETACH, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_RESET_PROBE, &[]).unwrap();
        assert!(b.take().is_empty());
    }

    #[test]
    fn deeper_states_reveal_more_blocks() {
        let mut dev = TcpcDevice::new(TcpcBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, TCPC_GET_STATUS, &[]).unwrap();
        let shallow = g.len();
        run(&mut dev, &mut g, &mut b, TCPC_SET_CC, &[2]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_VBUS, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_ATTACH, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_GET_STATUS, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, TCPC_VCONN, &[1]).unwrap_err();
        assert!(g.len() > shallow + 2);
    }
}
