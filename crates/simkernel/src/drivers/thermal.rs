//! Thermal-zone driver at `/dev/thermal`.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Read zone temperature (`arg[0]` = zone id), milli-°C returned.
pub const TH_GET_TEMP: u32 = 0x4004_5481;
/// Set a trip point (`arg[0]` = zone, `arg[1]` = milli-°C).
pub const TH_SET_TRIP: u32 = 0x4008_5482;
/// Set cooling-device throttle (`arg[0]` = level 0..=4).
pub const TH_SET_COOLING: u32 = 0x4004_5483;

/// Number of thermal zones.
pub const ZONES: u32 = 4;

/// Declarative state machine of the thermal driver — a single `Ready`
/// state; every in-range call (and any `read`) succeeds unconditionally.
fn thermal_state_model() -> StateModel {
    StateModel::new("Ready", &["Ready"]).with(vec![
        Transition::ioctl(TH_GET_TEMP).guard(WordGuard::In(0, ZONES - 1)),
        Transition::ioctl(TH_SET_TRIP)
            .guard(WordGuard::In(0, ZONES - 1))
            .guard(WordGuard::In(40_000, 120_000)),
        Transition::ioctl(TH_SET_COOLING).guard(WordGuard::In(0, 4)),
        Transition::read(),
    ])
}

/// The thermal driver.
#[derive(Debug)]
pub struct ThermalDevice {
    trips: [u32; ZONES as usize],
    cooling: u32,
    reads: u64,
}

impl ThermalDevice {
    /// Creates a thermal device with default 95 °C trips.
    pub fn new() -> Self {
        Self {
            trips: [95_000; ZONES as usize],
            cooling: 0,
            reads: 0,
        }
    }
}

impl Default for ThermalDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl CharDevice for ThermalDevice {
    fn name(&self) -> &str {
        "thermal"
    }

    fn node(&self) -> String {
        "/dev/thermal".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "TH_GET_TEMP",
                    TH_GET_TEMP,
                    vec![WordShape::Range { min: 0, max: ZONES - 1 }],
                ),
                IoctlDesc::with_words(
                    "TH_SET_TRIP",
                    TH_SET_TRIP,
                    vec![
                        WordShape::Range { min: 0, max: ZONES - 1 },
                        WordShape::Range { min: 40_000, max: 120_000 },
                    ],
                ),
                IoctlDesc::with_words(
                    "TH_SET_COOLING",
                    TH_SET_COOLING,
                    vec![WordShape::Range { min: 0, max: 4 }],
                ),
            ],
            supports_read: true,
            supports_write: false,
            supports_mmap: false,
            vendor: false,
            state_model: Some(thermal_state_model()),
        }
    }

    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        self.reads += 1;
        ctx.hit(&[1, self.reads.min(4)]);
        Ok(vec![0x2A; len.min(4)])
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        match request {
            TH_GET_TEMP => {
                let zone = word(arg, 0);
                if zone >= ZONES {
                    return Err(Errno::EINVAL);
                }
                self.reads += 1;
                let temp = 40_000 + zone * 2_500 + self.cooling * 100;
                ctx.hit(&[2, u64::from(zone), u64::from(self.cooling)]);
                Ok(IoctlOut::Val(u64::from(temp)))
            }
            TH_SET_TRIP => {
                let zone = word(arg, 0);
                let trip = word(arg, 1);
                if zone >= ZONES || !(40_000..=120_000).contains(&trip) {
                    return Err(Errno::EINVAL);
                }
                self.trips[zone as usize] = trip;
                ctx.hit(&[3, u64::from(zone), u64::from(trip) / 20_000]);
                Ok(IoctlOut::Val(0))
            }
            TH_SET_COOLING => {
                let level = word(arg, 0);
                if level > 4 {
                    return Err(Errno::EINVAL);
                }
                self.cooling = level;
                ctx.hit(&[4, u64::from(level)]);
                Ok(IoctlOut::Val(0))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    #[test]
    fn temp_and_trip_bounds() {
        let mut dev = ThermalDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0, "thermal", None, &mut g, &mut b, 1);
        assert!(dev.ioctl(&mut ctx, TH_GET_TEMP, &encode_words(&[0])).is_ok());
        assert_eq!(
            dev.ioctl(&mut ctx, TH_GET_TEMP, &encode_words(&[9])).unwrap_err(),
            Errno::EINVAL
        );
        assert!(dev.ioctl(&mut ctx, TH_SET_TRIP, &encode_words(&[1, 80_000])).is_ok());
        assert_eq!(
            dev.ioctl(&mut ctx, TH_SET_TRIP, &encode_words(&[1, 10_000])).unwrap_err(),
            Errno::EINVAL
        );
    }
}
