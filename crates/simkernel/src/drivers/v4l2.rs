//! V4L2-style camera capture driver at `/dev/video<N>`.
//!
//! Carries Table II bug **#12** (device E): `WARNING in v4l_querycap` when
//! userspace passes a capabilities pointer of `0xffffffff`, which the
//! vendor's compat shim dereferences before validation. This bug is
//! intentionally *shallow* (one ioctl) — it is one of the two bugs the
//! paper reports syzkaller also finds.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// `VIDIOC_QUERYCAP`
pub const VIDIOC_QUERYCAP: u32 = 0x8068_5600;
/// `VIDIOC_ENUM_FMT` (`arg[0]` = index)
pub const VIDIOC_ENUM_FMT: u32 = 0xC040_5602;
/// `VIDIOC_S_FMT` (`arg[0]` = width, `arg[1]` = height, `arg[2]` = pixfmt)
pub const VIDIOC_S_FMT: u32 = 0xC0D0_5605;
/// `VIDIOC_G_FMT`
pub const VIDIOC_G_FMT: u32 = 0xC0D0_5604;
/// `VIDIOC_REQBUFS` (`arg[0]` = count)
pub const VIDIOC_REQBUFS: u32 = 0xC014_5608;
/// `VIDIOC_QBUF` (`arg[0]` = index)
pub const VIDIOC_QBUF: u32 = 0xC058_560F;
/// `VIDIOC_DQBUF`
pub const VIDIOC_DQBUF: u32 = 0xC058_5611;
/// `VIDIOC_STREAMON`
pub const VIDIOC_STREAMON: u32 = 0x4004_5612;
/// `VIDIOC_STREAMOFF`
pub const VIDIOC_STREAMOFF: u32 = 0x4004_5613;

/// Supported pixel formats (fourcc-ish tags).
pub const PIXFMTS: [u32; 4] = [0x5956_5559, 0x3231_564e, 0x4747_504a, 0x3442_4752];

/// Declarative state machine of one capture session (state is per open
/// file, like a real V4L2 `fh`):
///
/// - `Fresh`: no format negotiated;
/// - `Fmt`: format set, no buffers;
/// - `Buf`/`BufQ`: buffers allocated, queue empty / exactly buffer 0
///   queued;
/// - `Str`/`StrQ`: streaming with the same two queue shapes.
///
/// Queuing any index other than 0 leaves the precisely-tracked queue
/// shapes.
fn v4l2_state_model() -> StateModel {
    let dim = || WordGuard::In(16, 4096);
    let pix = || WordGuard::OneOf(PIXFMTS.to_vec());
    StateModel::new("Fresh", &["Fresh", "Fmt", "Buf", "BufQ", "Str", "StrQ"])
        .per_open()
        .with(vec![
            Transition::ioctl(VIDIOC_QUERYCAP).guard(WordGuard::OneOf(vec![0, 1])),
            Transition::ioctl(VIDIOC_ENUM_FMT).guard(WordGuard::In(0, PIXFMTS.len() as u32 - 1)),
            Transition::ioctl(VIDIOC_S_FMT)
                .guard(dim())
                .guard(dim())
                .guard(pix())
                .from(&["Fresh"])
                .to("Fmt"),
            Transition::ioctl(VIDIOC_S_FMT)
                .guard(dim())
                .guard(dim())
                .guard(pix())
                .from(&["Fmt", "Buf", "BufQ"]),
            Transition::ioctl(VIDIOC_G_FMT).from(&["Fmt", "Buf", "BufQ", "Str", "StrQ"]),
            Transition::ioctl(VIDIOC_REQBUFS)
                .guard(WordGuard::In(1, u32::MAX))
                .from(&["Fmt", "Buf", "BufQ"])
                .to("Buf")
                .produces("v4l2:buf"),
            Transition::ioctl(VIDIOC_REQBUFS)
                .guard(WordGuard::Eq(0))
                .from(&["Fmt", "Buf", "BufQ"])
                .to("Fmt"),
            Transition::ioctl(VIDIOC_QBUF).guard(WordGuard::Eq(0)).from(&["Buf"]).to("BufQ"),
            Transition::ioctl(VIDIOC_QBUF).guard(WordGuard::Eq(0)).from(&["Str"]).to("StrQ"),
            Transition::ioctl(VIDIOC_QBUF)
                .guard(WordGuard::In(1, 31))
                .from(&["Buf", "BufQ"])
                .to("Fmt")
                .may_fail(),
            Transition::ioctl(VIDIOC_QBUF)
                .guard(WordGuard::In(1, 31))
                .from(&["Str", "StrQ"])
                .to("Fmt")
                .may_fail(),
            Transition::ioctl(VIDIOC_DQBUF).from(&["StrQ"]).to("Str"),
            Transition::ioctl(VIDIOC_STREAMON).from(&["Buf"]).to("Str").consumes("v4l2:buf"),
            Transition::ioctl(VIDIOC_STREAMON).from(&["BufQ"]).to("StrQ").consumes("v4l2:buf"),
            Transition::ioctl(VIDIOC_STREAMOFF).from(&["Str", "StrQ"]).to("Buf"),
            Transition::read().from(&["Str", "StrQ"]),
            Transition::mmap().from(&["Buf", "BufQ", "Str", "StrQ"]),
        ])
}

/// Which injected V4L2 bugs the firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct V4l2Bugs {
    /// Bug #12 (device E).
    pub querycap_warn: bool,
}

/// Per-open capture session (`file->private_data`).
#[derive(Debug, Default)]
struct V4l2Session {
    fmt: Option<(u32, u32, u32)>,
    buf_count: u32,
    queued: Vec<bool>,
    streaming: bool,
    frames: u64,
}

impl V4l2Session {
    fn phase(&self) -> u64 {
        match (self.fmt.is_some(), self.buf_count > 0, self.streaming) {
            (false, _, _) => 0,
            (true, false, _) => 1,
            (true, true, false) => 2,
            (true, true, true) => 3,
        }
    }
}

/// The camera capture driver. Capture state lives per open file, exactly
/// like a real V4L2 `fh` — a fresh open starts from scratch.
#[derive(Debug)]
pub struct V4l2Device {
    index: u32,
    armed: V4l2Bugs,
    sessions: std::collections::BTreeMap<u64, V4l2Session>,
}

impl V4l2Device {
    /// Creates `/dev/video<index>` with no bugs armed.
    pub fn new(index: u32) -> Self {
        Self::with_bugs(index, V4l2Bugs::default())
    }

    /// Creates `/dev/video<index>` with the given bugs armed.
    pub fn with_bugs(index: u32, armed: V4l2Bugs) -> Self {
        Self { index, armed, sessions: std::collections::BTreeMap::new() }
    }

    /// Live capture sessions (for tests/introspection).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

impl CharDevice for V4l2Device {
    fn name(&self) -> &str {
        "v4l2"
    }

    fn node(&self) -> String {
        format!("/dev/video{}", self.index)
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "VIDIOC_QUERYCAP",
                    VIDIOC_QUERYCAP,
                    vec![WordShape::Choice(vec![0, 1, 0xffff_ffff])],
                ),
                IoctlDesc::with_words(
                    "VIDIOC_ENUM_FMT",
                    VIDIOC_ENUM_FMT,
                    vec![WordShape::Range { min: 0, max: 7 }],
                ),
                IoctlDesc::with_words(
                    "VIDIOC_S_FMT",
                    VIDIOC_S_FMT,
                    vec![
                        WordShape::Range { min: 16, max: 4096 },
                        WordShape::Range { min: 16, max: 4096 },
                        WordShape::Choice(PIXFMTS.to_vec()),
                    ],
                ),
                IoctlDesc::bare("VIDIOC_G_FMT", VIDIOC_G_FMT),
                IoctlDesc::with_words(
                    "VIDIOC_REQBUFS",
                    VIDIOC_REQBUFS,
                    vec![WordShape::Range { min: 0, max: 32 }],
                ),
                IoctlDesc::with_words(
                    "VIDIOC_QBUF",
                    VIDIOC_QBUF,
                    vec![WordShape::Range { min: 0, max: 31 }],
                ),
                IoctlDesc::bare("VIDIOC_DQBUF", VIDIOC_DQBUF),
                IoctlDesc::bare("VIDIOC_STREAMON", VIDIOC_STREAMON),
                IoctlDesc::bare("VIDIOC_STREAMOFF", VIDIOC_STREAMOFF),
            ],
            supports_read: true,
            supports_write: false,
            supports_mmap: true,
            vendor: false,
            state_model: Some(v4l2_state_model()),
        }
    }

    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
        self.sessions.remove(&ctx.open_id);
    }

    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        let s = self.sessions.entry(ctx.open_id).or_default();
        if !s.streaming {
            return Err(Errno::EAGAIN);
        }
        s.frames += 1;
        let frames = s.frames;
        let n = len.min(256);
        ctx.hit_path(3, &[1, frames.min(8), n as u64 / 64]);
        Ok(vec![0u8; n])
    }

    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        let s = self.sessions.entry(ctx.open_id).or_default();
        if s.buf_count == 0 {
            return Err(Errno::EINVAL);
        }
        let phase = s.phase();
        ctx.hit(&[2, phase, len as u64 / 4096, u64::from(prot)]);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let armed = self.armed;
        let open_id = ctx.open_id;
        let s = self.sessions.entry(open_id).or_default();
        match request {
            VIDIOC_QUERYCAP => {
                let cap_ptr = word(arg, 0);
                let phase = s.phase();
                ctx.hit(&[3, phase, u64::from(cap_ptr == 0xffff_ffff)]);
                if cap_ptr == 0xffff_ffff {
                    // Bug #12: the compat shim dereferences the raw pointer
                    // before copy_from_user validation.
                    if armed.querycap_warn {
                        ctx.warn("v4l_querycap");
                    }
                    return Err(Errno::EFAULT);
                }
                Ok(IoctlOut::Out(b"sim-cam\0".to_vec()))
            }
            VIDIOC_ENUM_FMT => {
                let idx = word(arg, 0) as usize;
                if idx >= PIXFMTS.len() {
                    return Err(Errno::EINVAL);
                }
                ctx.hit(&[4, s.phase(), idx as u64]);
                Ok(IoctlOut::Val(u64::from(PIXFMTS[idx])))
            }
            VIDIOC_S_FMT => {
                if s.streaming {
                    return Err(Errno::EBUSY);
                }
                let (w, h, pix) = (word(arg, 0), word(arg, 1), word(arg, 2));
                if !(16..=4096).contains(&w) || !(16..=4096).contains(&h) {
                    return Err(Errno::EINVAL);
                }
                if !PIXFMTS.contains(&pix) {
                    return Err(Errno::EINVAL);
                }
                s.fmt = Some((w, h, pix));
                ctx.hit(&[5, s.phase(), u64::from(w) / 1024, u64::from(h) / 1024, u64::from(pix) & 0xff]);
                Ok(IoctlOut::Val(0))
            }
            VIDIOC_G_FMT => match s.fmt {
                Some((w, h, pix)) => {
                    ctx.hit(&[6, 1]);
                    Ok(IoctlOut::Out(
                        [w.to_le_bytes(), h.to_le_bytes(), pix.to_le_bytes()].concat(),
                    ))
                }
                None => {
                    ctx.hit(&[6, 0]);
                    Err(Errno::EINVAL)
                }
            },
            VIDIOC_REQBUFS => {
                if s.streaming {
                    return Err(Errno::EBUSY);
                }
                if s.fmt.is_none() {
                    return Err(Errno::EINVAL);
                }
                let count = word(arg, 0).min(32);
                s.buf_count = count;
                s.queued = vec![false; count as usize];
                ctx.hit(&[7, s.phase(), u64::from(count) / 4]);
                Ok(IoctlOut::Val(u64::from(count)))
            }
            VIDIOC_QBUF => {
                let idx = word(arg, 0) as usize;
                if idx >= s.queued.len() {
                    return Err(Errno::EINVAL);
                }
                if s.queued[idx] {
                    return Err(Errno::EBUSY);
                }
                s.queued[idx] = true;
                let depth = s.queued.iter().filter(|&&q| q).count() as u64;
                ctx.hit_path(2, &[8, s.phase(), depth.min(8)]);
                Ok(IoctlOut::Val(0))
            }
            VIDIOC_DQBUF => {
                if !s.streaming {
                    return Err(Errno::EINVAL);
                }
                match s.queued.iter().position(|&q| q) {
                    Some(idx) => {
                        s.queued[idx] = false;
                        s.frames += 1;
                        ctx.hit_path(6, &[9, s.phase(), s.frames.min(8)]);
                        Ok(IoctlOut::Val(idx as u64))
                    }
                    None => Err(Errno::EAGAIN),
                }
            }
            VIDIOC_STREAMON => {
                if s.buf_count == 0 {
                    return Err(Errno::EINVAL);
                }
                if s.streaming {
                    return Err(Errno::EBUSY);
                }
                s.streaming = true;
                let depth = s.queued.iter().filter(|&&q| q).count() as u64;
                ctx.hit_path(4, &[10, depth.min(8)]);
                Ok(IoctlOut::Val(0))
            }
            VIDIOC_STREAMOFF => {
                if !s.streaming {
                    return Err(Errno::EINVAL);
                }
                s.streaming = false;
                s.queued.iter_mut().for_each(|q| *q = false);
                ctx.hit_path(3, &[11, s.phase(), s.frames.min(8)]);
                Ok(IoctlOut::Val(0))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    fn run(
        dev: &mut V4l2Device,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x400, "v4l2", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn bug12_querycap_with_bad_pointer_warns() {
        let mut dev = V4l2Device::with_bugs(0, V4l2Bugs { querycap_warn: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VIDIOC_QUERYCAP, &[0xffff_ffff]).unwrap_err(),
            Errno::EFAULT
        );
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].title, "WARNING in v4l_querycap");
    }

    #[test]
    fn querycap_normal_pointer_is_fine() {
        let mut dev = V4l2Device::with_bugs(0, V4l2Bugs { querycap_warn: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let out = run(&mut dev, &mut g, &mut b, VIDIOC_QUERYCAP, &[0]).unwrap();
        assert!(matches!(out, IoctlOut::Out(_)));
        assert!(b.take().is_empty());
    }

    #[test]
    fn capture_pipeline_ordering_enforced() {
        let mut dev = V4l2Device::new(0);
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        // REQBUFS before S_FMT fails.
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VIDIOC_REQBUFS, &[4]).unwrap_err(),
            Errno::EINVAL
        );
        run(&mut dev, &mut g, &mut b, VIDIOC_S_FMT, &[640, 480, PIXFMTS[0]]).unwrap();
        run(&mut dev, &mut g, &mut b, VIDIOC_REQBUFS, &[4]).unwrap();
        run(&mut dev, &mut g, &mut b, VIDIOC_QBUF, &[0]).unwrap();
        run(&mut dev, &mut g, &mut b, VIDIOC_QBUF, &[1]).unwrap();
        run(&mut dev, &mut g, &mut b, VIDIOC_STREAMON, &[]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VIDIOC_DQBUF, &[]).unwrap(),
            IoctlOut::Val(0)
        );
        run(&mut dev, &mut g, &mut b, VIDIOC_STREAMOFF, &[]).unwrap();
        assert!(b.take().is_empty());
    }

    #[test]
    fn double_qbuf_same_index_is_ebusy() {
        let mut dev = V4l2Device::new(0);
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, VIDIOC_S_FMT, &[640, 480, PIXFMTS[1]]).unwrap();
        run(&mut dev, &mut g, &mut b, VIDIOC_REQBUFS, &[2]).unwrap();
        run(&mut dev, &mut g, &mut b, VIDIOC_QBUF, &[0]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VIDIOC_QBUF, &[0]).unwrap_err(),
            Errno::EBUSY
        );
    }

    #[test]
    fn full_pipeline_reveals_more_blocks_than_querycap_spam() {
        let mut shallow_dev = V4l2Device::new(0);
        let (mut g1, mut b1) = (CoverageMap::new(), BugSink::new());
        for _ in 0..20 {
            run(&mut shallow_dev, &mut g1, &mut b1, VIDIOC_QUERYCAP, &[0]).unwrap();
        }
        let mut deep_dev = V4l2Device::new(0);
        let (mut g2, mut b2) = (CoverageMap::new(), BugSink::new());
        run(&mut deep_dev, &mut g2, &mut b2, VIDIOC_S_FMT, &[1280, 720, PIXFMTS[0]]).unwrap();
        run(&mut deep_dev, &mut g2, &mut b2, VIDIOC_REQBUFS, &[4]).unwrap();
        for i in 0..4 {
            run(&mut deep_dev, &mut g2, &mut b2, VIDIOC_QBUF, &[i]).unwrap();
        }
        run(&mut deep_dev, &mut g2, &mut b2, VIDIOC_STREAMON, &[]).unwrap();
        for _ in 0..3 {
            run(&mut deep_dev, &mut g2, &mut b2, VIDIOC_DQBUF, &[]).unwrap();
        }
        assert!(g2.len() > g1.len());
    }

    #[test]
    fn node_name_tracks_index() {
        assert_eq!(V4l2Device::new(2).node(), "/dev/video2");
    }
}
