//! Vendor video-codec driver at `/dev/vcodec` — the kernel side of the
//! Media HAL. The HAL-layer crash (Table II bug #6) lives in `simhal`; this
//! driver is a deep, bug-free state machine providing the coverage surface
//! that joint HAL/kernel fuzzing explores.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Configure a session (`arg[0]` = codec, `arg[1]` = width, `arg[2]` = height).
pub const VC_CONFIGURE: u32 = 0x400C_5801;
/// Start the configured session.
pub const VC_START: u32 = 0x4004_5802;
/// Queue an input buffer (`arg[0]` = byte length).
pub const VC_QUEUE_IN: u32 = 0x4004_5803;
/// Dequeue an output buffer; returns its length.
pub const VC_DEQUEUE_OUT: u32 = 0x8004_5804;
/// Flush queued buffers.
pub const VC_FLUSH: u32 = 0x4004_5805;
/// Signal end-of-stream and drain.
pub const VC_DRAIN: u32 = 0x4004_5806;
/// Stop the session.
pub const VC_STOP: u32 = 0x4004_5807;
/// Hard reset.
pub const VC_RESET: u32 = 0x4004_5808;

/// Supported codec ids (H264, H265, VP9, AV1).
pub const CODECS: [u32; 4] = [1, 2, 3, 4];

/// Declarative state machine of one codec session (per open fd). Running
/// states `R<i><o>` track the exact `(in_queue, out_ready)` pair for small
/// queues (every second input mints an output frame), and draining states
/// `D<o>` track `out_ready` only — that is all `VC_DEQUEUE_OUT` needs.
/// Queues deeper than 3 inputs leave the precise region, encoded as
/// may-fail clobbers.
fn vcodec_state_model() -> StateModel {
    let queue = WordGuard::In(1, 1 << 20);
    StateModel::new(
        "Unconf",
        &[
            "Unconf", "Conf", "Stopped", "R00", "R10", "R20", "R30", "R21", "R31", "D0", "D1",
            "D2",
        ],
    )
    .per_open()
    .with(vec![
        Transition::ioctl(VC_CONFIGURE)
            .guard(WordGuard::OneOf(CODECS.to_vec()))
            .guard(WordGuard::In(64, 3840))
            .guard(WordGuard::In(64, 2160))
            .from(&["Unconf", "Stopped"])
            .to("Conf"),
        Transition::ioctl(VC_START).from(&["Conf"]).to("R00"),
        Transition::ioctl(VC_QUEUE_IN).guard(queue.clone()).from(&["R00"]).to("R10"),
        Transition::ioctl(VC_QUEUE_IN).guard(queue.clone()).from(&["R10"]).to("R21"),
        Transition::ioctl(VC_QUEUE_IN).guard(queue.clone()).from(&["R20"]).to("R30"),
        Transition::ioctl(VC_QUEUE_IN).guard(queue.clone()).from(&["R21"]).to("R31"),
        // A fourth input overflows the precise region (in_queue = 4).
        Transition::ioctl(VC_QUEUE_IN).guard(queue.clone()).from(&["R30", "R31"]).to("R00").may_fail(),
        Transition::ioctl(VC_DEQUEUE_OUT).from(&["R21"]).to("R20").produces("vcodec:frame"),
        Transition::ioctl(VC_DEQUEUE_OUT).from(&["R31"]).to("R30").produces("vcodec:frame"),
        Transition::ioctl(VC_DEQUEUE_OUT).from(&["D2"]).to("D1").produces("vcodec:frame"),
        Transition::ioctl(VC_DEQUEUE_OUT).from(&["D1"]).to("D0").produces("vcodec:frame"),
        Transition::ioctl(VC_FLUSH)
            .from(&["R00", "R10", "R20", "R30", "R21", "R31", "D0", "D1", "D2"])
            .to("R00"),
        Transition::ioctl(VC_DRAIN).from(&["R00", "R10"]).to("D0"),
        Transition::ioctl(VC_DRAIN).from(&["R20", "R30"]).to("D1"),
        Transition::ioctl(VC_DRAIN).from(&["R21", "R31"]).to("D2"),
        Transition::ioctl(VC_STOP)
            .from(&["Conf", "Stopped", "R00", "R10", "R20", "R30", "R21", "R31", "D0", "D1", "D2"])
            .to("Stopped"),
        Transition::ioctl(VC_RESET).to("Unconf"),
        Transition::write().from(&["R00"]).to("R10"),
        Transition::write().from(&["R10"]).to("R20"),
        Transition::write().from(&["R20"]).to("R30"),
        Transition::write().from(&["R21"]).to("R31"),
        Transition::write().from(&["R30", "R31"]).to("R00").may_fail(),
        Transition::mmap().from(&[
            "Conf", "Stopped", "R00", "R10", "R20", "R30", "R21", "R31", "D0", "D1", "D2",
        ]),
    ])
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CodecState {
    Unconfigured,
    Configured,
    Running,
    Draining,
    Stopped,
}

/// Per-open codec session (`file->private_data`).
#[derive(Debug)]
struct CodecSession {
    state: CodecState,
    codec: u32,
    dims: (u32, u32),
    in_queue: u32,
    out_ready: u32,
    frames: u64,
}

impl Default for CodecSession {
    fn default() -> Self {
        Self {
            state: CodecState::Unconfigured,
            codec: 0,
            dims: (0, 0),
            in_queue: 0,
            out_ready: 0,
            frames: 0,
        }
    }
}

/// The video-codec driver. Sessions live per open file; a fresh open is a
/// fresh unconfigured session.
#[derive(Debug, Default)]
pub struct VcodecDevice {
    sessions: std::collections::BTreeMap<u64, CodecSession>,
}

impl VcodecDevice {
    /// Creates the codec device with no sessions.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CharDevice for VcodecDevice {
    fn name(&self) -> &str {
        "vcodec"
    }

    fn node(&self) -> String {
        "/dev/vcodec".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::with_words(
                    "VC_CONFIGURE",
                    VC_CONFIGURE,
                    vec![
                        WordShape::Choice(CODECS.to_vec()),
                        WordShape::Range { min: 64, max: 3840 },
                        WordShape::Range { min: 64, max: 2160 },
                    ],
                ),
                IoctlDesc::bare("VC_START", VC_START),
                IoctlDesc::with_words(
                    "VC_QUEUE_IN",
                    VC_QUEUE_IN,
                    vec![WordShape::Range { min: 1, max: 1 << 20 }],
                ),
                IoctlDesc::bare("VC_DEQUEUE_OUT", VC_DEQUEUE_OUT),
                IoctlDesc::bare("VC_FLUSH", VC_FLUSH),
                IoctlDesc::bare("VC_DRAIN", VC_DRAIN),
                IoctlDesc::bare("VC_STOP", VC_STOP),
                IoctlDesc::bare("VC_RESET", VC_RESET),
            ],
            supports_read: false,
            supports_write: true,
            supports_mmap: true,
            vendor: true,
            state_model: Some(vcodec_state_model()),
        }
    }

    fn release(&mut self, ctx: &mut DriverCtx<'_>) {
        ctx.hit(&[0x11]);
        self.sessions.remove(&ctx.open_id);
    }

    fn write(&mut self, ctx: &mut DriverCtx<'_>, data: &[u8]) -> Result<usize, Errno> {
        let s = self.sessions.entry(ctx.open_id).or_default();
        if s.state != CodecState::Running {
            return Err(Errno::EPIPE);
        }
        s.in_queue += 1;
        ctx.hit_path(3, &[1, u64::from(s.codec), data.len().min(4096) as u64 / 512]);
        Ok(data.len())
    }

    fn mmap(&mut self, ctx: &mut DriverCtx<'_>, len: usize, prot: u32) -> Result<(), Errno> {
        let s = self.sessions.entry(ctx.open_id).or_default();
        if s.state == CodecState::Unconfigured {
            return Err(Errno::EINVAL);
        }
        ctx.hit(&[2, s.state as u64, len as u64 / 4096, u64::from(prot)]);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let s = self.sessions.entry(ctx.open_id).or_default();
        let state_tag = s.state as u64;
        match request {
            VC_CONFIGURE => {
                if !matches!(s.state, CodecState::Unconfigured | CodecState::Stopped) {
                    return Err(Errno::EBUSY);
                }
                let codec = word(arg, 0);
                let (w, h) = (word(arg, 1), word(arg, 2));
                if !CODECS.contains(&codec) {
                    return Err(Errno::EINVAL);
                }
                if !(64..=3840).contains(&w) || !(64..=2160).contains(&h) {
                    return Err(Errno::EINVAL);
                }
                s.codec = codec;
                s.dims = (w, h);
                s.state = CodecState::Configured;
                ctx.hit(&[3, state_tag, u64::from(codec), u64::from(w) / 640, u64::from(h) / 480]);
                Ok(IoctlOut::Val(0))
            }
            VC_START => {
                if s.state != CodecState::Configured {
                    return Err(Errno::EINVAL);
                }
                s.state = CodecState::Running;
                ctx.hit_path(3, &[4, u64::from(s.codec)]);
                Ok(IoctlOut::Val(0))
            }
            VC_QUEUE_IN => {
                if s.state != CodecState::Running {
                    return Err(Errno::EPIPE);
                }
                let len = word(arg, 0);
                if len == 0 || len > (1 << 20) {
                    return Err(Errno::EINVAL);
                }
                s.in_queue += 1;
                // Every second input produces an output frame.
                if s.in_queue.is_multiple_of(2) {
                    s.out_ready += 1;
                }
                ctx.hit_path(3, &[5, u64::from(s.codec), u64::from(s.in_queue.min(2)), u64::from(len) / (64 << 10)]);
                Ok(IoctlOut::Val(u64::from(s.in_queue)))
            }
            VC_DEQUEUE_OUT => {
                if !matches!(s.state, CodecState::Running | CodecState::Draining) {
                    return Err(Errno::EINVAL);
                }
                if s.out_ready == 0 {
                    return Err(Errno::EAGAIN);
                }
                s.out_ready -= 1;
                s.frames += 1;
                ctx.hit_path(6, &[6, state_tag, s.frames.min(8)]);
                Ok(IoctlOut::Val(s.frames))
            }
            VC_FLUSH => {
                if !matches!(s.state, CodecState::Running | CodecState::Draining) {
                    return Err(Errno::EINVAL);
                }
                ctx.hit_path(3, &[7, state_tag, u64::from(s.in_queue.min(8)), u64::from(s.out_ready.min(8))]);
                s.in_queue = 0;
                s.out_ready = 0;
                if s.state == CodecState::Draining {
                    s.state = CodecState::Running;
                }
                Ok(IoctlOut::Val(0))
            }
            VC_DRAIN => {
                if s.state != CodecState::Running {
                    return Err(Errno::EINVAL);
                }
                s.state = CodecState::Draining;
                s.out_ready += s.in_queue / 2;
                ctx.hit_path(4, &[8, u64::from(s.in_queue.min(8))]);
                Ok(IoctlOut::Val(0))
            }
            VC_STOP => {
                if s.state == CodecState::Unconfigured {
                    return Err(Errno::EINVAL);
                }
                ctx.hit(&[9, state_tag]);
                s.state = CodecState::Stopped;
                s.in_queue = 0;
                s.out_ready = 0;
                Ok(IoctlOut::Val(0))
            }
            VC_RESET => {
                ctx.hit(&[10, state_tag]);
                *s = CodecSession::default();
                Ok(IoctlOut::Val(0))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    fn run(
        dev: &mut VcodecDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x700, "vcodec", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn decode_pipeline_produces_frames() {
        let mut dev = VcodecDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, VC_CONFIGURE, &[1, 1920, 1080]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_START, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_QUEUE_IN, &[4096]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VC_DEQUEUE_OUT, &[]).unwrap_err(),
            Errno::EAGAIN
        );
        run(&mut dev, &mut g, &mut b, VC_QUEUE_IN, &[4096]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VC_DEQUEUE_OUT, &[]).unwrap(),
            IoctlOut::Val(1)
        );
        assert!(b.take().is_empty());
    }

    #[test]
    fn start_before_configure_fails() {
        let mut dev = VcodecDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(run(&mut dev, &mut g, &mut b, VC_START, &[]).unwrap_err(), Errno::EINVAL);
        assert_eq!(run(&mut dev, &mut g, &mut b, VC_QUEUE_IN, &[1]).unwrap_err(), Errno::EPIPE);
    }

    #[test]
    fn drain_flush_cycle() {
        let mut dev = VcodecDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, VC_CONFIGURE, &[2, 640, 480]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_START, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_QUEUE_IN, &[1024]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_QUEUE_IN, &[1024]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_DRAIN, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_FLUSH, &[]).unwrap();
        // Back to running after a drain-flush.
        run(&mut dev, &mut g, &mut b, VC_QUEUE_IN, &[1024]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_STOP, &[]).unwrap();
    }

    #[test]
    fn reconfigure_after_stop_allowed() {
        let mut dev = VcodecDevice::new();
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, VC_CONFIGURE, &[1, 640, 480]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, VC_CONFIGURE, &[1, 640, 480]).unwrap_err(),
            Errno::EBUSY
        );
        run(&mut dev, &mut g, &mut b, VC_STOP, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, VC_CONFIGURE, &[3, 1280, 720]).unwrap();
    }
}
