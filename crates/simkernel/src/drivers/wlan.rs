//! mac80211-style wireless driver at `/dev/wlan0`.
//!
//! Carries Table II bug **#10** (device C2): `WARNING in
//! rate_control_rate_init` when an association is started with an empty
//! supported-rates bitmap.

use crate::driver::{
    word, CharDevice, DriverApi, DriverCtx, IoctlDesc, IoctlOut, StateModel, Transition,
    WordGuard, WordShape,
};
use crate::errno::Errno;

/// Start a scan.
pub const WL_SCAN_START: u32 = 0x4004_5701;
/// Fetch scan results (returns AP count).
pub const WL_SCAN_RESULTS: u32 = 0x8004_5702;
/// Set the supported-rates bitmap (`arg[0]`).
pub const WL_SET_RATES: u32 = 0x4004_5703;
/// Connect to AP index `arg[0]`.
pub const WL_CONNECT: u32 = 0x4004_5704;
/// Disconnect.
pub const WL_DISCONNECT: u32 = 0x4004_5705;
/// Read link status.
pub const WL_GET_STATUS: u32 = 0x8004_5706;
/// Set power-save level (`arg[0]` in 0..=3).
pub const WL_SET_POWER: u32 = 0x4004_5707;

/// Default supported-rates bitmap (802.11g basic set).
pub const DEFAULT_RATES: u32 = 0x0fff;

/// Declarative state machine of the link: `Idle → Scan → Done → Assoc`,
/// with every precise state carrying the invariant `rates != 0` (the
/// boot default). Zeroing the rates bitmap leaves the precise region —
/// a later `WL_CONNECT` would fail with bug #10's warning instead of
/// associating, so `Assoc` could no longer be trusted.
fn wlan_state_model() -> StateModel {
    StateModel::new("Idle", &["Idle", "Scan", "Done", "Assoc"]).with(vec![
        Transition::ioctl(WL_SCAN_START).from(&["Idle", "Done", "Assoc"]).to("Scan"),
        Transition::ioctl(WL_SCAN_RESULTS).from(&["Scan"]).to("Done").produces("wlan:scan"),
        Transition::ioctl(WL_SET_RATES).guard(WordGuard::MaskNonZero(0xffff)),
        Transition::ioctl(WL_SET_RATES)
            .guard(WordGuard::MaskEq(0xffff, 0))
            .to("Idle")
            .may_fail(),
        // Scans always report at least 3 APs, so indexes 0..=2 are safe;
        // 3..=5 depend on the scan counter.
        Transition::ioctl(WL_CONNECT)
            .guard(WordGuard::In(0, 2))
            .from(&["Done"])
            .to("Assoc")
            .consumes("wlan:scan"),
        Transition::ioctl(WL_CONNECT)
            .guard(WordGuard::In(3, 5))
            .from(&["Done"])
            .to("Assoc")
            .may_fail(),
        Transition::ioctl(WL_DISCONNECT).from(&["Assoc"]).to("Idle"),
        Transition::ioctl(WL_GET_STATUS),
        Transition::ioctl(WL_SET_POWER).guard(WordGuard::In(0, 3)),
        Transition::read().from(&["Assoc"]),
    ])
}

/// Which injected WLAN bugs the firmware arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WlanBugs {
    /// Bug #10 (device C2).
    pub rate_init_warn: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    Idle,
    Scanning,
    ScanDone,
    Associated,
}

/// The wireless driver.
#[derive(Debug)]
pub struct WlanDevice {
    armed: WlanBugs,
    state: LinkState,
    rates: u32,
    ap_count: u32,
    connected_ap: u32,
    power: u32,
    scans: u32,
}

impl WlanDevice {
    /// Creates a WLAN device with the given bugs armed.
    pub fn new(armed: WlanBugs) -> Self {
        Self {
            armed,
            state: LinkState::Idle,
            rates: DEFAULT_RATES,
            ap_count: 0,
            connected_ap: 0,
            power: 0,
            scans: 0,
        }
    }
}

impl CharDevice for WlanDevice {
    fn name(&self) -> &str {
        "wlan"
    }

    fn node(&self) -> String {
        "/dev/wlan0".into()
    }

    fn api(&self) -> DriverApi {
        DriverApi {
            ioctls: vec![
                IoctlDesc::bare("WL_SCAN_START", WL_SCAN_START),
                IoctlDesc::bare("WL_SCAN_RESULTS", WL_SCAN_RESULTS),
                IoctlDesc::with_words(
                    "WL_SET_RATES",
                    WL_SET_RATES,
                    vec![WordShape::Flags(vec![0x1, 0x2, 0x4, 0x8, 0x10, 0x100, 0x800])],
                ),
                IoctlDesc::with_words(
                    "WL_CONNECT",
                    WL_CONNECT,
                    vec![WordShape::Range { min: 0, max: 7 }],
                ),
                IoctlDesc::bare("WL_DISCONNECT", WL_DISCONNECT),
                IoctlDesc::bare("WL_GET_STATUS", WL_GET_STATUS),
                IoctlDesc::with_words(
                    "WL_SET_POWER",
                    WL_SET_POWER,
                    vec![WordShape::Choice(vec![0, 1, 2, 3])],
                ),
            ],
            supports_read: true,
            supports_write: false,
            supports_mmap: false,
            vendor: true,
            state_model: Some(wlan_state_model()),
        }
    }

    fn read(&mut self, ctx: &mut DriverCtx<'_>, len: usize) -> Result<Vec<u8>, Errno> {
        if self.state != LinkState::Associated {
            return Err(Errno::ENOTCONN);
        }
        let n = len.min(128);
        ctx.hit_path(3, &[1, u64::from(self.connected_ap), n as u64 / 32]);
        Ok(vec![0u8; n])
    }

    fn ioctl(
        &mut self,
        ctx: &mut DriverCtx<'_>,
        request: u32,
        arg: &[u8],
    ) -> Result<IoctlOut, Errno> {
        let state_tag = self.state as u64;
        match request {
            WL_SCAN_START => {
                if self.state == LinkState::Scanning {
                    return Err(Errno::EBUSY);
                }
                self.state = LinkState::Scanning;
                self.scans += 1;
                ctx.hit(&[2, state_tag, self.scans.min(4) as u64]);
                Ok(IoctlOut::Val(0))
            }
            WL_SCAN_RESULTS => {
                if self.state != LinkState::Scanning {
                    return Err(Errno::EAGAIN);
                }
                self.state = LinkState::ScanDone;
                self.ap_count = 3 + self.scans % 3;
                ctx.hit_path(3, &[3, u64::from(self.ap_count)]);
                Ok(IoctlOut::Val(u64::from(self.ap_count)))
            }
            WL_SET_RATES => {
                let rates = word(arg, 0);
                self.rates = rates & 0xffff;
                ctx.hit(&[4, u64::from(self.rates.count_ones())]);
                Ok(IoctlOut::Val(0))
            }
            WL_CONNECT => {
                let idx = word(arg, 0);
                if self.state != LinkState::ScanDone {
                    return Err(Errno::EAGAIN);
                }
                if idx >= self.ap_count {
                    return Err(Errno::EINVAL);
                }
                ctx.hit_path(6, &[5, u64::from(idx), u64::from(self.rates.count_ones().min(8))]);
                if self.rates == 0 {
                    // Bug #10: the rate-control init path assumes at least
                    // one basic rate survives intersection with the AP.
                    if self.armed.rate_init_warn {
                        ctx.warn("rate_control_rate_init");
                    }
                    return Err(Errno::EIO);
                }
                self.state = LinkState::Associated;
                self.connected_ap = idx;
                Ok(IoctlOut::Val(0))
            }
            WL_DISCONNECT => {
                if self.state != LinkState::Associated {
                    return Err(Errno::ENOTCONN);
                }
                self.state = LinkState::Idle;
                ctx.hit_path(2, &[6, u64::from(self.connected_ap)]);
                Ok(IoctlOut::Val(0))
            }
            WL_GET_STATUS => {
                ctx.hit(&[7, state_tag, u64::from(self.power)]);
                Ok(IoctlOut::Out(vec![self.state as u8, self.power as u8]))
            }
            WL_SET_POWER => {
                let level = word(arg, 0);
                if level > 3 {
                    return Err(Errno::EINVAL);
                }
                self.power = level;
                ctx.hit(&[8, state_tag, u64::from(level)]);
                Ok(IoctlOut::Val(0))
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMap;
    use crate::driver::encode_words;
    use crate::report::BugSink;

    fn run(
        dev: &mut WlanDevice,
        g: &mut CoverageMap,
        b: &mut BugSink,
        req: u32,
        words: &[u32],
    ) -> Result<IoctlOut, Errno> {
        let mut ctx = DriverCtx::new(0x300, "wlan", None, g, b, 1);
        dev.ioctl(&mut ctx, req, &encode_words(words))
    }

    #[test]
    fn bug10_connect_with_empty_rates_warns() {
        let mut dev = WlanDevice::new(WlanBugs { rate_init_warn: true });
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, WL_SCAN_START, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, WL_SCAN_RESULTS, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, WL_SET_RATES, &[0]).unwrap();
        assert_eq!(
            run(&mut dev, &mut g, &mut b, WL_CONNECT, &[0]).unwrap_err(),
            Errno::EIO
        );
        let reports = b.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].title, "WARNING in rate_control_rate_init");
    }

    #[test]
    fn empty_rates_benign_when_unarmed() {
        let mut dev = WlanDevice::new(WlanBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        run(&mut dev, &mut g, &mut b, WL_SCAN_START, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, WL_SCAN_RESULTS, &[]).unwrap();
        run(&mut dev, &mut g, &mut b, WL_SET_RATES, &[0]).unwrap();
        run(&mut dev, &mut g, &mut b, WL_CONNECT, &[0]).unwrap_err();
        assert!(b.take().is_empty());
    }

    #[test]
    fn scan_connect_lifecycle() {
        let mut dev = WlanDevice::new(WlanBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        assert_eq!(
            run(&mut dev, &mut g, &mut b, WL_CONNECT, &[0]).unwrap_err(),
            Errno::EAGAIN,
            "connect before scan must fail"
        );
        run(&mut dev, &mut g, &mut b, WL_SCAN_START, &[]).unwrap();
        let aps = run(&mut dev, &mut g, &mut b, WL_SCAN_RESULTS, &[]).unwrap();
        let IoctlOut::Val(n) = aps else { panic!() };
        assert!(n >= 3);
        run(&mut dev, &mut g, &mut b, WL_CONNECT, &[0]).unwrap();
        run(&mut dev, &mut g, &mut b, WL_DISCONNECT, &[]).unwrap();
    }

    #[test]
    fn read_requires_association() {
        let mut dev = WlanDevice::new(WlanBugs::default());
        let (mut g, mut b) = (CoverageMap::new(), BugSink::new());
        let mut ctx = DriverCtx::new(0x300, "wlan", None, &mut g, &mut b, 1);
        assert_eq!(dev.read(&mut ctx, 64).unwrap_err(), Errno::ENOTCONN);
    }
}
