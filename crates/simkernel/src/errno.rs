//! Kernel error numbers, mirroring the subset of Linux `errno` values that
//! device drivers commonly return.

use std::fmt;

/// A Linux-style error number returned by a failing system call.
///
/// The discriminants match the canonical Linux values so that logs read
/// naturally next to real kernel traces.
///
/// ```
/// use simkernel::Errno;
/// assert_eq!(Errno::EINVAL.code(), 22);
/// assert_eq!(Errno::EINVAL.to_string(), "EINVAL");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// No such device or address.
    ENXIO = 6,
    /// Bad file descriptor.
    EBADF = 9,
    /// Try again.
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// No such device.
    ENODEV = 19,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files.
    EMFILE = 24,
    /// Inappropriate ioctl for device.
    ENOTTY = 25,
    /// No space left on device.
    ENOSPC = 28,
    /// Broken pipe.
    EPIPE = 32,
    /// Protocol not supported.
    EPROTONOSUPPORT = 93,
    /// Operation not supported.
    EOPNOTSUPP = 95,
    /// Address already in use.
    EADDRINUSE = 98,
    /// Connection reset by peer.
    ECONNRESET = 104,
    /// Transport endpoint is not connected.
    ENOTCONN = 107,
    /// Connection refused.
    ECONNREFUSED = 111,
    /// Operation already in progress.
    EALREADY = 114,
    /// Operation now in progress.
    EINPROGRESS = 115,
}

impl Errno {
    /// The numeric errno value as found in the Linux uapi headers.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// All errno values this simulation can produce, useful for exhaustive
    /// table construction in fuzzer feedback code.
    pub fn all() -> &'static [Errno] {
        use Errno::*;
        &[
            EPERM, ENOENT, EINTR, EIO, ENXIO, EBADF, EAGAIN, ENOMEM, EACCES, EFAULT, EBUSY,
            EEXIST, ENODEV, EINVAL, EMFILE, ENOTTY, ENOSPC, EPIPE, EPROTONOSUPPORT, EOPNOTSUPP,
            EADDRINUSE, ECONNRESET, ENOTCONN, ECONNREFUSED, EALREADY, EINPROGRESS,
        ]
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux_uapi() {
        assert_eq!(Errno::EPERM.code(), 1);
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EBADF.code(), 9);
        assert_eq!(Errno::EINVAL.code(), 22);
        assert_eq!(Errno::ENOTTY.code(), 25);
        assert_eq!(Errno::EOPNOTSUPP.code(), 95);
    }

    #[test]
    fn all_is_deduplicated() {
        let all = Errno::all();
        let mut codes: Vec<u32> = all.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn display_matches_symbol() {
        assert_eq!(Errno::ENODEV.to_string(), "ENODEV");
    }

    #[test]
    fn errno_is_error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Errno>();
    }
}
