//! Per-process file-descriptor tables.

use crate::errno::Errno;
use std::collections::BTreeMap;
use std::fmt;

/// A file descriptor, valid within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Identifier for an open-file object inside the kernel. Several fds (after
/// `dup`) may refer to the same object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpenFileId(pub u64);

/// What an open file refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// A character device registered in devfs, by node path.
    CharDev {
        /// The `/dev/...` path the object was opened through.
        path: String,
    },
    /// A socket handled by a protocol driver.
    Socket {
        /// Address family.
        domain: u32,
        /// Socket type.
        ty: u32,
        /// Protocol.
        proto: u32,
    },
}

/// Kernel-side state of one open file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// What the file refers to.
    pub kind: FileKind,
    /// Reference count (fds pointing at this object).
    pub refs: u32,
}

/// Maximum descriptors per process (`RLIMIT_NOFILE` stand-in).
pub const MAX_FDS: usize = 256;

/// A process's descriptor table mapping [`Fd`] to [`OpenFileId`].
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    slots: BTreeMap<u32, OpenFileId>,
    next: u32,
}

impl FdTable {
    /// Creates an empty table. Descriptors start at 3, as 0–2 are the
    /// standard streams.
    pub fn new() -> Self {
        Self {
            slots: BTreeMap::new(),
            next: 3,
        }
    }

    /// Installs `file` at the lowest free descriptor.
    ///
    /// # Errors
    ///
    /// Returns `EMFILE` when the table is full.
    pub fn install(&mut self, file: OpenFileId) -> Result<Fd, Errno> {
        if self.slots.len() >= MAX_FDS {
            return Err(Errno::EMFILE);
        }
        let fd = self.next;
        self.next += 1;
        self.slots.insert(fd, file);
        Ok(Fd(fd))
    }

    /// Looks up the open file for `fd`.
    ///
    /// # Errors
    ///
    /// Returns `EBADF` for unknown descriptors.
    pub fn get(&self, fd: Fd) -> Result<OpenFileId, Errno> {
        self.slots.get(&fd.0).copied().ok_or(Errno::EBADF)
    }

    /// Removes `fd`, returning the object it referred to.
    ///
    /// # Errors
    ///
    /// Returns `EBADF` for unknown descriptors.
    pub fn remove(&mut self, fd: Fd) -> Result<OpenFileId, Errno> {
        self.slots.remove(&fd.0).ok_or(Errno::EBADF)
    }

    /// Number of live descriptors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no live descriptors.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(fd, open-file)` pairs in ascending descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, OpenFileId)> + '_ {
        self.slots.iter().map(|(&fd, &of)| (Fd(fd), of))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_allocates_ascending_from_three() {
        let mut t = FdTable::new();
        assert_eq!(t.install(OpenFileId(1)).unwrap(), Fd(3));
        assert_eq!(t.install(OpenFileId(2)).unwrap(), Fd(4));
        assert_eq!(t.get(Fd(3)).unwrap(), OpenFileId(1));
    }

    #[test]
    fn get_unknown_is_ebadf() {
        let t = FdTable::new();
        assert_eq!(t.get(Fd(3)), Err(Errno::EBADF));
    }

    #[test]
    fn remove_frees_slot() {
        let mut t = FdTable::new();
        let fd = t.install(OpenFileId(9)).unwrap();
        assert_eq!(t.remove(fd).unwrap(), OpenFileId(9));
        assert_eq!(t.get(fd), Err(Errno::EBADF));
        assert_eq!(t.remove(fd), Err(Errno::EBADF));
        assert!(t.is_empty());
    }

    #[test]
    fn table_enforces_rlimit() {
        let mut t = FdTable::new();
        for i in 0..MAX_FDS {
            t.install(OpenFileId(i as u64)).unwrap();
        }
        assert_eq!(t.install(OpenFileId(999)), Err(Errno::EMFILE));
    }
}
