//! The kernel proper: process table, devfs, syscall dispatch, kcov,
//! bug collection, and trace sessions.

use crate::coverage::{Block, CoverageMap, DRIVER_REGION, KcovBuffer};
use crate::driver::{CharDevice, DriverApi, DriverCtx, IoctlOut};
use crate::drivers::bt::BtStack;
use crate::errno::Errno;
use crate::fd::{Fd, FdTable, FileKind, OpenFile, OpenFileId};
use crate::report::{BugReport, BugSink};
use crate::syscall::{af, Syscall, SyscallRet};
use crate::trace::{Origin, SyscallEvent, TraceFilter, TraceId, TraceSession};
use std::collections::BTreeMap;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

#[derive(Debug)]
struct Process {
    origin: Origin,
    fds: FdTable,
    kcov: KcovBuffer,
}

/// Base of the coverage region assigned to the first registered device;
/// subsequent devices get consecutive regions.
pub const DEVICE_COV_BASE: u64 = 0x1000_0000;
/// Coverage region of the HCI part of the Bluetooth stack.
pub const HCI_COV_BASE: u64 = 0x0800_0000;
/// Coverage region of the L2CAP part of the Bluetooth stack.
pub const L2CAP_COV_BASE: u64 = 0x0900_0000;

struct DeviceSlot {
    base: u64,
    dev: Box<dyn CharDevice>,
}

impl std::fmt::Debug for DeviceSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSlot")
            .field("base", &self.base)
            .field("dev", &self.dev.name())
            .finish()
    }
}

/// The simulated kernel.
///
/// Holds registered character devices, the Bluetooth socket stack, process
/// and open-file tables, accumulated coverage, pending bug reports, and
/// attached trace sessions. See the [crate docs](crate) for an end-to-end
/// example.
#[derive(Debug)]
pub struct Kernel {
    devices: BTreeMap<String, DeviceSlot>,
    bt: BtStack,
    procs: BTreeMap<u32, Process>,
    files: BTreeMap<u64, OpenFile>,
    global_cov: CoverageMap,
    bugs: BugSink,
    sessions: Vec<Option<TraceSession>>,
    next_pid: u32,
    next_open: u64,
    syscalls_executed: u64,
    ioctl_only: bool,
}

impl Kernel {
    /// Creates a kernel with an empty devfs and a default (no bugs armed)
    /// Bluetooth stack.
    pub fn new() -> Self {
        Self::with_bt(BtStack::new())
    }

    /// Creates a kernel with a specific Bluetooth stack configuration
    /// (device firmware decides which injected bugs are armed).
    pub fn with_bt(bt: BtStack) -> Self {
        Self {
            devices: BTreeMap::new(),
            bt,
            procs: BTreeMap::new(),
            files: BTreeMap::new(),
            global_cov: CoverageMap::new(),
            bugs: BugSink::new(),
            sessions: Vec::new(),
            next_pid: 100,
            next_open: 1,
            syscalls_executed: 0,
            ioctl_only: false,
        }
    }

    /// Restricts the syscall surface to `openat`/`ioctl`/`close` (plus
    /// `dup`), failing everything else with `EPERM`. This models the
    /// DroidFuzz-D / Difuze experiment setup where "other requests will be
    /// blocked" (paper §V-C2) — it applies to *all* processes, including
    /// HAL services.
    pub fn set_ioctl_only(&mut self, on: bool) {
        self.ioctl_only = on;
    }

    /// Whether the ioctl-only restriction is active.
    pub fn ioctl_only(&self) -> bool {
        self.ioctl_only
    }

    /// Registers a character device, returning its coverage-region base.
    ///
    /// # Panics
    ///
    /// Panics if a device is already mounted at the same node — firmware
    /// specs must not double-mount.
    pub fn register_device(&mut self, dev: Box<dyn CharDevice>) -> u64 {
        let node = dev.node();
        assert!(
            !self.devices.contains_key(&node),
            "device node {node} already registered"
        );
        // Debug builds validate the driver's self-description at mount
        // time: duplicate ioctl request codes, empty Choice/Flags word
        // shapes, and malformed state models are firmware bugs.
        #[cfg(debug_assertions)]
        {
            let problems = crate::driver::validate_api(dev.name(), &dev.api());
            assert!(problems.is_empty(), "invalid DriverApi: {problems:?}");
        }
        let base = DEVICE_COV_BASE + self.devices.len() as u64 * DRIVER_REGION;
        self.devices.insert(node, DeviceSlot { base, dev });
        base
    }

    /// The `/dev` nodes currently registered, in sorted order.
    pub fn device_nodes(&self) -> Vec<String> {
        self.devices.keys().cloned().collect()
    }

    /// The self-described syscall surface of the driver at `node`.
    pub fn device_api(&self, node: &str) -> Option<DriverApi> {
        self.devices.get(node).map(|s| s.dev.api())
    }

    /// Driver name and coverage-region base for every driver (devices plus
    /// the two Bluetooth stack halves), for per-driver coverage accounting.
    pub fn driver_regions(&self) -> Vec<(String, u64)> {
        let mut regions: Vec<(String, u64)> = self
            .devices
            .values()
            .map(|s| (s.dev.name().to_owned(), s.base))
            .collect();
        regions.push(("hci".to_owned(), HCI_COV_BASE));
        regions.push(("l2cap".to_owned(), L2CAP_COV_BASE));
        regions.sort();
        regions
    }

    /// Spawns a process with the given origin tag.
    pub fn spawn_process(&mut self, origin: Origin) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                origin,
                fds: FdTable::new(),
                kcov: KcovBuffer::new(),
            },
        );
        Pid(pid)
    }

    /// Terminates a process: closes every descriptor it still holds
    /// (running driver `release` handlers, exactly as `do_exit` would) and
    /// removes it from the process table.
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` for unknown processes.
    pub fn exit_process(&mut self, pid: Pid) -> Result<(), Errno> {
        let Some(proc) = self.procs.get(&pid.0) else {
            return Err(Errno::ENOENT);
        };
        let fds: Vec<Fd> = proc.fds.iter().map(|(fd, _)| fd).collect();
        for fd in fds {
            let _ = self.sys_close(pid, fd);
        }
        self.procs.remove(&pid.0);
        Ok(())
    }

    /// Starts kcov collection for `pid` (clears the previous buffer).
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` for unknown processes.
    pub fn kcov_enable(&mut self, pid: Pid) -> Result<(), Errno> {
        self.procs
            .get_mut(&pid.0)
            .ok_or(Errno::ENOENT)?
            .kcov
            .enable();
        Ok(())
    }

    /// Stops kcov collection for `pid` and returns the recorded blocks.
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` for unknown processes.
    pub fn kcov_collect(&mut self, pid: Pid) -> Result<Vec<Block>, Errno> {
        Ok(self
            .procs
            .get_mut(&pid.0)
            .ok_or(Errno::ENOENT)?
            .kcov
            .disable())
    }

    /// Stops kcov collection for `pid` and appends the recorded blocks to
    /// `out`, keeping the per-process buffer allocation. The reuse-friendly
    /// form of [`kcov_collect`](Self::kcov_collect).
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` for unknown processes.
    pub fn kcov_collect_into(&mut self, pid: Pid, out: &mut Vec<Block>) -> Result<(), Errno> {
        self.procs
            .get_mut(&pid.0)
            .ok_or(Errno::ENOENT)?
            .kcov
            .disable_into(out);
        Ok(())
    }

    /// Attaches a trace session; events matching `filter` accumulate until
    /// drained or detached.
    pub fn attach_trace(&mut self, filter: TraceFilter) -> TraceId {
        if let Some(idx) = self.sessions.iter().position(Option::is_none) {
            self.sessions[idx] = Some(TraceSession::new(filter));
            TraceId(idx as u32)
        } else {
            self.sessions.push(Some(TraceSession::new(filter)));
            TraceId(self.sessions.len() as u32 - 1)
        }
    }

    /// Drains buffered events from a session (empty for unknown ids).
    pub fn trace_drain(&mut self, id: TraceId) -> Vec<SyscallEvent> {
        self.sessions
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .map(TraceSession::drain)
            .unwrap_or_default()
    }

    /// Drains buffered events from a session into `out`, keeping the
    /// session's buffer allocation (no-op for unknown ids). The
    /// reuse-friendly form of [`trace_drain`](Self::trace_drain).
    pub fn trace_drain_into(&mut self, id: TraceId, out: &mut Vec<SyscallEvent>) {
        if let Some(session) = self.sessions.get_mut(id.0 as usize).and_then(Option::as_mut) {
            session.drain_into(out);
        }
    }

    /// Detaches a session, discarding pending events.
    pub fn detach_trace(&mut self, id: TraceId) {
        if let Some(slot) = self.sessions.get_mut(id.0 as usize) {
            *slot = None;
        }
    }

    /// Drains all pending bug reports.
    pub fn take_bugs(&mut self) -> Vec<BugReport> {
        self.bugs.take()
    }

    /// Whether a fatal bug has wedged the kernel (device must reboot).
    pub fn is_wedged(&self) -> bool {
        self.bugs.is_wedged()
    }

    /// Wedges the kernel without raising any bug report — the
    /// fault-injection path for spontaneous device hangs (see
    /// [`crate::report::BugSink::force_wedge`]). Every subsequent syscall fails with
    /// `EIO` until the device reboots.
    pub fn force_wedge(&mut self) {
        self.bugs.force_wedge();
    }

    /// Coverage accumulated since boot across all tasks.
    pub fn global_coverage(&self) -> &CoverageMap {
        &self.global_cov
    }

    /// Total syscalls dispatched since boot.
    pub fn syscall_count(&self) -> u64 {
        self.syscalls_executed
    }

    /// Dispatches one system call on behalf of `pid`.
    ///
    /// A wedged kernel (after a fatal bug) fails everything with `EIO`,
    /// modelling a panicked/hung device; unknown pids fail with `EPERM`.
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> SyscallRet {
        self.syscalls_executed += 1;
        if self.bugs.is_wedged() {
            return SyscallRet::Err(Errno::EIO);
        }
        if self.ioctl_only
            && !matches!(
                call.nr(),
                crate::syscall::SyscallNr::Openat
                    | crate::syscall::SyscallNr::Ioctl
                    | crate::syscall::SyscallNr::Close
                    | crate::syscall::SyscallNr::Dup
            )
        {
            return SyscallRet::Err(Errno::EPERM);
        }
        let origin = match self.procs.get(&pid.0) {
            Some(p) => p.origin,
            None => return SyscallRet::Err(Errno::EPERM),
        };
        let (ret, path) = self.dispatch(pid, &call);
        let event = SyscallEvent {
            origin,
            nr: call.nr(),
            critical: call.critical_arg(),
            path,
            ok: ret.is_ok(),
        };
        for session in self.sessions.iter_mut().flatten() {
            session.record(&event);
        }
        ret
    }

    fn dispatch(&mut self, pid: Pid, call: &Syscall) -> (SyscallRet, Option<String>) {
        match call {
            Syscall::Openat { path } => (self.sys_open(pid, path), Some(path.clone())),
            Syscall::Close { fd } => self.sys_close(pid, *fd),
            Syscall::Read { fd, len } => self.on_file(pid, *fd, |k, of, ctx| match &of.kind {
                FileKind::CharDev { path } => match k.devices.get_mut(path) {
                    Some(slot) => slot.dev.read(ctx, *len).map(SyscallRet::Data),
                    None => Err(Errno::ENODEV),
                },
                FileKind::Socket { .. } => k.bt.read(ctx, *len).map(SyscallRet::Data),
            }),
            Syscall::Write { fd, data } => self.on_file(pid, *fd, |k, of, ctx| match &of.kind {
                FileKind::CharDev { path } => match k.devices.get_mut(path) {
                    Some(slot) => slot.dev.write(ctx, data).map(|n| SyscallRet::Ok(n as u64)),
                    None => Err(Errno::ENODEV),
                },
                FileKind::Socket { .. } => k.bt.write(ctx, data).map(|n| SyscallRet::Ok(n as u64)),
            }),
            Syscall::Ioctl { fd, request, arg } => {
                self.on_file(pid, *fd, |k, of, ctx| match &of.kind {
                    FileKind::CharDev { path } => match k.devices.get_mut(path) {
                        Some(slot) => slot.dev.ioctl(ctx, *request, arg).map(|out| match out {
                            IoctlOut::Val(v) => SyscallRet::Ok(v),
                            IoctlOut::Out(data) => SyscallRet::Data(data),
                        }),
                        None => Err(Errno::ENODEV),
                    },
                    FileKind::Socket { .. } => k.bt.ioctl(ctx, *request, arg).map(SyscallRet::Ok),
                })
            }
            Syscall::Mmap { fd, len, prot } => {
                self.on_file(pid, *fd, |k, of, ctx| match &of.kind {
                    FileKind::CharDev { path } => match k.devices.get_mut(path) {
                        Some(slot) => slot.dev.mmap(ctx, *len, *prot).map(|_| SyscallRet::Ok(0)),
                        None => Err(Errno::ENODEV),
                    },
                    FileKind::Socket { .. } => Err(Errno::ENODEV),
                })
            }
            Syscall::Poll { fd, events } => self.on_file(pid, *fd, |k, of, ctx| match &of.kind {
                FileKind::CharDev { path } => match k.devices.get_mut(path) {
                    Some(slot) => slot.dev.poll(ctx, *events).map(|m| SyscallRet::Ok(u64::from(m))),
                    None => Err(Errno::ENODEV),
                },
                FileKind::Socket { .. } => k.bt.poll(ctx, *events).map(|m| SyscallRet::Ok(u64::from(m))),
            }),
            Syscall::Dup { fd } => self.sys_dup(pid, *fd),
            Syscall::Socket { domain, ty, proto } => {
                (self.sys_socket(pid, *domain, *ty, *proto), None)
            }
            Syscall::Bind { fd, addr } => {
                self.on_socket(pid, *fd, |k, ctx, _| k.bt.bind(ctx, *addr).map(SyscallRet::Ok))
            }
            Syscall::Connect { fd, addr } => {
                self.on_socket(pid, *fd, |k, ctx, _| k.bt.connect(ctx, *addr).map(SyscallRet::Ok))
            }
            Syscall::Listen { fd, backlog } => self.on_socket(pid, *fd, |k, ctx, _| {
                k.bt.listen(ctx, *backlog).map(SyscallRet::Ok)
            }),
            Syscall::Accept { fd } => (self.sys_accept(pid, *fd), None),
        }
    }

    fn sys_open(&mut self, pid: Pid, path: &str) -> SyscallRet {
        let Some(slot) = self.devices.get_mut(path) else {
            return SyscallRet::Err(Errno::ENOENT);
        };
        let open_id = self.next_open;
        let Some(proc) = self.procs.get_mut(&pid.0) else {
            return SyscallRet::Err(Errno::EPERM);
        };
        let mut ctx = DriverCtx::new(
            slot.base,
            "",
            Some(&mut proc.kcov),
            &mut self.global_cov,
            &mut self.bugs,
            open_id,
        );
        match slot.dev.open(&mut ctx) {
            Ok(()) => {}
            Err(e) => return SyscallRet::Err(e),
        }
        self.next_open += 1;
        let of = OpenFile {
            kind: FileKind::CharDev { path: path.to_owned() },
            refs: 1,
        };
        self.files.insert(open_id, of);
        match proc.fds.install(OpenFileId(open_id)) {
            Ok(fd) => SyscallRet::NewFd(fd),
            Err(e) => {
                self.files.remove(&open_id);
                SyscallRet::Err(e)
            }
        }
    }

    fn sys_socket(&mut self, pid: Pid, domain: u32, ty: u32, proto: u32) -> SyscallRet {
        if domain != af::BLUETOOTH {
            return SyscallRet::Err(Errno::EPROTONOSUPPORT);
        }
        let open_id = self.next_open;
        let Some(proc) = self.procs.get_mut(&pid.0) else {
            return SyscallRet::Err(Errno::EPERM);
        };
        let mut ctx = DriverCtx::new(
            0,
            "bt",
            Some(&mut proc.kcov),
            &mut self.global_cov,
            &mut self.bugs,
            open_id,
        );
        if let Err(e) = self.bt.socket(&mut ctx, ty, proto) {
            return SyscallRet::Err(e);
        }
        self.next_open += 1;
        self.files.insert(
            open_id,
            OpenFile {
                kind: FileKind::Socket { domain, ty, proto },
                refs: 1,
            },
        );
        match proc.fds.install(OpenFileId(open_id)) {
            Ok(fd) => SyscallRet::NewFd(fd),
            Err(e) => {
                self.files.remove(&open_id);
                SyscallRet::Err(e)
            }
        }
    }

    fn sys_accept(&mut self, pid: Pid, fd: Fd) -> SyscallRet {
        let Some(proc) = self.procs.get_mut(&pid.0) else {
            return SyscallRet::Err(Errno::EPERM);
        };
        let parent_id = match proc.fds.get(fd) {
            Ok(id) => id,
            Err(e) => return SyscallRet::Err(e),
        };
        let Some(parent_file) = self.files.get(&parent_id.0) else {
            return SyscallRet::Err(Errno::EBADF);
        };
        let FileKind::Socket { domain, ty, proto } = parent_file.kind else {
            return SyscallRet::Err(Errno::EOPNOTSUPP);
        };
        let child_id = self.next_open;
        let mut ctx = DriverCtx::new(
            0,
            "bt",
            Some(&mut proc.kcov),
            &mut self.global_cov,
            &mut self.bugs,
            parent_id.0,
        );
        if let Err(e) = self.bt.accept(&mut ctx, child_id) {
            return SyscallRet::Err(e);
        }
        self.next_open += 1;
        self.files.insert(
            child_id,
            OpenFile {
                kind: FileKind::Socket { domain, ty, proto },
                refs: 1,
            },
        );
        match proc.fds.install(OpenFileId(child_id)) {
            Ok(new_fd) => SyscallRet::NewFd(new_fd),
            Err(e) => {
                self.files.remove(&child_id);
                SyscallRet::Err(e)
            }
        }
    }

    fn sys_close(&mut self, pid: Pid, fd: Fd) -> (SyscallRet, Option<String>) {
        let Some(proc) = self.procs.get_mut(&pid.0) else {
            return (SyscallRet::Err(Errno::EPERM), None);
        };
        let of_id = match proc.fds.remove(fd) {
            Ok(id) => id,
            Err(e) => return (SyscallRet::Err(e), None),
        };
        let Some(file) = self.files.get_mut(&of_id.0) else {
            return (SyscallRet::Err(Errno::EBADF), None);
        };
        file.refs -= 1;
        if file.refs > 0 {
            return (SyscallRet::Ok(0), None);
        }
        let file = self.files.remove(&of_id.0).expect("file exists");
        let path = match &file.kind {
            FileKind::CharDev { path } => Some(path.clone()),
            FileKind::Socket { .. } => None,
        };
        let mut ctx_holder;
        match &file.kind {
            FileKind::CharDev { path } => {
                if let Some(slot) = self.devices.get_mut(path) {
                    ctx_holder = DriverCtx::new(
                        slot.base,
                        "",
                        Some(&mut proc.kcov),
                        &mut self.global_cov,
                        &mut self.bugs,
                        of_id.0,
                    );
                    slot.dev.release(&mut ctx_holder);
                }
            }
            FileKind::Socket { .. } => {
                ctx_holder = DriverCtx::new(
                    0,
                    "bt",
                    Some(&mut proc.kcov),
                    &mut self.global_cov,
                    &mut self.bugs,
                    of_id.0,
                );
                self.bt.close(&mut ctx_holder);
            }
        }
        (SyscallRet::Ok(0), path)
    }

    fn sys_dup(&mut self, pid: Pid, fd: Fd) -> (SyscallRet, Option<String>) {
        let Some(proc) = self.procs.get_mut(&pid.0) else {
            return (SyscallRet::Err(Errno::EPERM), None);
        };
        let of_id = match proc.fds.get(fd) {
            Ok(id) => id,
            Err(e) => return (SyscallRet::Err(e), None),
        };
        let Some(file) = self.files.get_mut(&of_id.0) else {
            return (SyscallRet::Err(Errno::EBADF), None);
        };
        file.refs += 1;
        match proc.fds.install(of_id) {
            Ok(new_fd) => (SyscallRet::NewFd(new_fd), None),
            Err(e) => {
                self.files.get_mut(&of_id.0).expect("file exists").refs -= 1;
                (SyscallRet::Err(e), None)
            }
        }
    }

    /// Runs `f` with the open file for `(pid, fd)` and a driver context
    /// whose `open_id` identifies that file. Returns the node path for
    /// char devices so the trace event can carry it.
    fn on_file<F>(&mut self, pid: Pid, fd: Fd, f: F) -> (SyscallRet, Option<String>)
    where
        F: FnOnce(&mut FileAccess<'_>, &OpenFile, &mut DriverCtx<'_>) -> Result<SyscallRet, Errno>,
    {
        let Some(proc) = self.procs.get_mut(&pid.0) else {
            return (SyscallRet::Err(Errno::EPERM), None);
        };
        let of_id = match proc.fds.get(fd) {
            Ok(id) => id,
            Err(e) => return (SyscallRet::Err(e), None),
        };
        let Some(file) = self.files.get(&of_id.0).cloned() else {
            return (SyscallRet::Err(Errno::EBADF), None);
        };
        let (base, name, path) = match &file.kind {
            FileKind::CharDev { path } => match self.devices.get(path) {
                Some(slot) => (slot.base, slot.dev.name().to_owned(), Some(path.clone())),
                None => return (SyscallRet::Err(Errno::ENODEV), None),
            },
            FileKind::Socket { .. } => (0, "bt".to_owned(), None),
        };
        let mut ctx = DriverCtx::new(
            base,
            &name,
            Some(&mut proc.kcov),
            &mut self.global_cov,
            &mut self.bugs,
            of_id.0,
        );
        let mut access = FileAccess {
            devices: &mut self.devices,
            bt: &mut self.bt,
        };
        let ret = match f(&mut access, &file, &mut ctx) {
            Ok(r) => r,
            Err(e) => SyscallRet::Err(e),
        };
        (ret, path)
    }

    /// Like [`on_file`](Self::on_file) but requires the fd to be a socket.
    fn on_socket<F>(&mut self, pid: Pid, fd: Fd, f: F) -> (SyscallRet, Option<String>)
    where
        F: FnOnce(&mut FileAccess<'_>, &mut DriverCtx<'_>, &OpenFile) -> Result<SyscallRet, Errno>,
    {
        self.on_file(pid, fd, |k, of, ctx| match of.kind {
            FileKind::Socket { .. } => f(k, ctx, of),
            FileKind::CharDev { .. } => Err(Errno::EOPNOTSUPP),
        })
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Split-borrow view over the kernel's device map and Bluetooth stack,
/// handed to syscall bodies alongside the driver context.
pub struct FileAccess<'k> {
    devices: &'k mut BTreeMap<String, DeviceSlot>,
    /// The Bluetooth protocol stack.
    pub bt: &'k mut BtStack,
}

impl std::fmt::Debug for FileAccess<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileAccess").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{encode_words, IoctlDesc};

    /// Minimal test driver: one ioctl that echoes, coverage per request.
    #[derive(Debug, Default)]
    struct EchoDev {
        opens: u32,
    }

    impl CharDevice for EchoDev {
        fn name(&self) -> &str {
            "echo"
        }
        fn node(&self) -> String {
            "/dev/echo0".into()
        }
        fn api(&self) -> DriverApi {
            DriverApi {
                ioctls: vec![IoctlDesc::bare("ECHO", 0xE0)],
                supports_read: true,
                supports_write: true,
                supports_mmap: false,
                vendor: false,
                state_model: None,
            }
        }
        fn open(&mut self, ctx: &mut DriverCtx<'_>) -> Result<(), Errno> {
            self.opens += 1;
            ctx.hit(&[0, u64::from(self.opens.min(4))]);
            Ok(())
        }
        fn ioctl(
            &mut self,
            ctx: &mut DriverCtx<'_>,
            request: u32,
            arg: &[u8],
        ) -> Result<IoctlOut, Errno> {
            ctx.hit(&[1, u64::from(request)]);
            if request == 0xE0 {
                Ok(IoctlOut::Out(arg.to_vec()))
            } else {
                Err(Errno::ENOTTY)
            }
        }
    }

    fn kernel_with_echo() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.register_device(Box::new(EchoDev::default()));
        let pid = k.spawn_process(Origin::Native);
        (k, pid)
    }

    #[test]
    fn open_ioctl_close_roundtrip() {
        let (mut k, pid) = kernel_with_echo();
        let fd = k
            .syscall(pid, Syscall::Openat { path: "/dev/echo0".into() })
            .fd()
            .unwrap();
        let payload = encode_words(&[42]);
        let ret = k.syscall(
            pid,
            Syscall::Ioctl { fd, request: 0xE0, arg: payload.clone() },
        );
        assert_eq!(ret, SyscallRet::Data(payload));
        assert!(k.syscall(pid, Syscall::Close { fd }).is_ok());
        assert_eq!(
            k.syscall(pid, Syscall::Close { fd }).errno(),
            Some(Errno::EBADF)
        );
    }

    #[test]
    fn open_missing_node_is_enoent() {
        let (mut k, pid) = kernel_with_echo();
        let ret = k.syscall(pid, Syscall::Openat { path: "/dev/nope".into() });
        assert_eq!(ret.errno(), Some(Errno::ENOENT));
    }

    #[test]
    fn kcov_captures_per_task_coverage() {
        let (mut k, pid) = kernel_with_echo();
        k.kcov_enable(pid).unwrap();
        let fd = k
            .syscall(pid, Syscall::Openat { path: "/dev/echo0".into() })
            .fd()
            .unwrap();
        k.syscall(pid, Syscall::Ioctl { fd, request: 0xE0, arg: vec![] });
        let blocks = k.kcov_collect(pid).unwrap();
        assert_eq!(blocks.len(), 2, "open + ioctl each hit one block");
        assert!(k.global_coverage().len() >= 2);
    }

    #[test]
    fn trace_session_observes_syscalls_with_critical_args() {
        let (mut k, pid) = kernel_with_echo();
        let tid = k.attach_trace(TraceFilter::NativeOnly);
        let fd = k
            .syscall(pid, Syscall::Openat { path: "/dev/echo0".into() })
            .fd()
            .unwrap();
        k.syscall(pid, Syscall::Ioctl { fd, request: 0xE0, arg: vec![] });
        let events = k.trace_drain(tid);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].nr, crate::syscall::SyscallNr::Ioctl);
        assert_eq!(events[1].critical, 0xE0);
        assert_eq!(events[1].path.as_deref(), Some("/dev/echo0"));
        k.detach_trace(tid);
        k.syscall(pid, Syscall::Close { fd });
        assert!(k.trace_drain(tid).is_empty());
    }

    #[test]
    fn dup_shares_open_file() {
        let (mut k, pid) = kernel_with_echo();
        let fd = k
            .syscall(pid, Syscall::Openat { path: "/dev/echo0".into() })
            .fd()
            .unwrap();
        let fd2 = k.syscall(pid, Syscall::Dup { fd }).fd().unwrap();
        assert_ne!(fd, fd2);
        assert!(k.syscall(pid, Syscall::Close { fd }).is_ok());
        // Original object still alive through fd2.
        assert!(k
            .syscall(pid, Syscall::Ioctl { fd: fd2, request: 0xE0, arg: vec![] })
            .is_ok());
        assert!(k.syscall(pid, Syscall::Close { fd: fd2 }).is_ok());
    }

    #[test]
    fn unknown_pid_is_eperm() {
        let (mut k, _) = kernel_with_echo();
        let ret = k.syscall(Pid(9999), Syscall::Openat { path: "/dev/echo0".into() });
        assert_eq!(ret.errno(), Some(Errno::EPERM));
    }

    #[test]
    fn non_bluetooth_socket_unsupported() {
        let (mut k, pid) = kernel_with_echo();
        let ret = k.syscall(pid, Syscall::Socket { domain: 2, ty: 1, proto: 0 });
        assert_eq!(ret.errno(), Some(Errno::EPROTONOSUPPORT));
    }

    #[test]
    fn driver_regions_include_bt_halves() {
        let (k, _) = kernel_with_echo();
        let regions = k.driver_regions();
        let names: Vec<&str> = regions.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"echo"));
        assert!(names.contains(&"hci"));
        assert!(names.contains(&"l2cap"));
    }
}
