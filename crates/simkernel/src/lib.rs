//! # simkernel — a simulated Linux kernel substrate for driver fuzzing
//!
//! This crate stands in for the rooted, kcov/KASAN-enabled Linux kernels that
//! the DroidFuzz paper (DAC'25) runs on seven physical embedded Android
//! devices. It provides the observable surface a kernel driver fuzzer needs:
//!
//! * a **syscall layer** ([`Syscall`], [`Kernel::syscall`]) with per-process
//!   file-descriptor tables,
//! * a **character-driver framework** ([`driver::CharDevice`]) with stateful
//!   vendor drivers under [`drivers`],
//! * **kcov-style coverage** ([`coverage`]): per-task collection of basic
//!   block identifiers emitted by driver state machines,
//! * **KASAN/WARNING/BUG-style bug reports** ([`report`]) raised by injected,
//!   state-gated defects, plus a soft-lockup watchdog,
//! * **trace hooks** ([`trace`]) standing in for the eBPF probes DroidFuzz
//!   inserts to observe HAL-originated syscalls.
//!
//! Coverage blocks are derived from driver state, so *deeper, semantically
//! correct call sequences reveal more blocks* — the property that makes
//! coverage a meaningful proxy for driver state exploration, exactly as the
//! paper uses it.
//!
//! ```
//! use simkernel::{Kernel, Syscall, trace::Origin};
//!
//! # fn main() -> Result<(), simkernel::Errno> {
//! let mut kernel = Kernel::new();
//! kernel.register_device(Box::new(simkernel::drivers::v4l2::V4l2Device::new(0)));
//! let pid = kernel.spawn_process(Origin::Native);
//! let fd = kernel.syscall(pid, Syscall::Openat { path: "/dev/video0".into() }).fd()?;
//! kernel.syscall(pid, Syscall::Ioctl { fd, request: simkernel::drivers::v4l2::VIDIOC_QUERYCAP, arg: vec![] }).ok()?;
//! # Ok(())
//! # }
//! ```

pub mod coverage;
pub mod driver;
pub mod drivers;
pub mod errno;
pub mod fd;
pub mod kernel;
pub mod report;
pub mod syscall;
pub mod trace;

pub use coverage::{Block, CoverageMap, KcovBuffer};
pub use errno::Errno;
pub use kernel::{Kernel, Pid};
pub use report::{BugKind, BugReport, Component};
pub use syscall::{Syscall, SyscallNr, SyscallRet};
