//! Kernel bug reports: the simulated analogue of WARNING/BUG/KASAN splats
//! and soft-lockup watchdog messages appearing in the device's kernel log.

use std::fmt;

/// The class of a detected kernel (or HAL) bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// `WARN_ON`-style recoverable logic error.
    Warning,
    /// `BUG()`-style unrecoverable logic error.
    Bug,
    /// KASAN slab-use-after-free.
    KasanUseAfterFree,
    /// KASAN invalid memory access (wild read/write).
    KasanInvalidAccess,
    /// Soft lockup reported by the watchdog (infinite loop in the driver).
    SoftLockup,
    /// Full kernel panic.
    Panic,
    /// Userspace native crash (HAL process received SIGSEGV/SIGABRT).
    NativeCrash,
}

impl BugKind {
    /// Whether this bug class corrupts or hangs the kernel badly enough
    /// that the device must reboot before continuing (the paper reboots on
    /// *any* bug, but dedup/repro logic needs to know severity).
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            BugKind::Bug | BugKind::KasanUseAfterFree | BugKind::KasanInvalidAccess
                | BugKind::SoftLockup
                | BugKind::Panic
        )
    }

    /// Whether this is a memory-safety bug (the paper's "Memory Related
    /// Bug" column) as opposed to a logic error.
    pub fn is_memory_bug(self) -> bool {
        matches!(
            self,
            BugKind::KasanUseAfterFree | BugKind::KasanInvalidAccess | BugKind::NativeCrash
        )
    }
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::Warning => "WARNING",
            BugKind::Bug => "BUG",
            BugKind::KasanUseAfterFree => "KASAN: slab-use-after-free",
            BugKind::KasanInvalidAccess => "KASAN: invalid-access",
            BugKind::SoftLockup => "watchdog: soft lockup",
            BugKind::Panic => "Kernel panic",
            BugKind::NativeCrash => "Native crash",
        };
        f.write_str(s)
    }
}

/// Which layer of the Android stack the bug lives in (Table II's
/// "Component" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// A vendor kernel driver.
    KernelDriver,
    /// A shared kernel subsystem (locking, net, …).
    KernelSubsystem,
    /// A userspace HAL service.
    Hal,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::KernelDriver => "Kernel Driver",
            Component::KernelSubsystem => "Kernel Subsystem",
            Component::Hal => "HAL",
        };
        f.write_str(s)
    }
}

/// A single bug occurrence, as the fuzzer's crash collector sees it.
///
/// `title` is the stable deduplication key (mirroring syzkaller's practice
/// of keying reports by the crash headline); `log` carries the synthetic
/// splat text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BugReport {
    /// Bug class.
    pub kind: BugKind,
    /// Stable headline, e.g. `"WARNING in rt1711_i2c_probe"`.
    pub title: String,
    /// Stack layer the bug belongs to.
    pub component: Component,
    /// Synthetic kernel-log excerpt for the report.
    pub log: String,
}

impl BugReport {
    /// Builds a report with a standard headline format `"{kind} in {site}"`.
    pub fn at_site(kind: BugKind, site: &str, component: Component) -> Self {
        let title = format!("{kind} in {site}");
        let log = format!(
            "------------[ cut here ]------------\n{title}\nCall trace: {site}+0x1c4/0x2d8\n---[ end trace ]---"
        );
        Self {
            kind,
            title,
            component,
            log,
        }
    }

    /// Builds a report with a verbatim headline (for `BUG:`-style messages
    /// that do not follow the `in <site>` pattern).
    pub fn with_title(kind: BugKind, title: impl Into<String>, component: Component) -> Self {
        let title = title.into();
        let log = format!("{title}\n(simulated splat)");
        Self {
            kind,
            title,
            component,
            log,
        }
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.title, self.component)
    }
}

/// Collects bug reports raised while executing syscalls, and tracks whether
/// the kernel is wedged (fatal bug seen) so the device knows it must reboot.
#[derive(Debug, Clone, Default)]
pub struct BugSink {
    reports: Vec<BugReport>,
    wedged: bool,
}

impl BugSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a bug report; fatal kinds wedge the kernel.
    pub fn push(&mut self, report: BugReport) {
        if report.kind.is_fatal() {
            self.wedged = true;
        }
        self.reports.push(report);
    }

    /// Drains all accumulated reports.
    pub fn take(&mut self) -> Vec<BugReport> {
        std::mem::take(&mut self.reports)
    }

    /// Whether a fatal bug has occurred since boot.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Wedges the kernel *without* a bug report — the spontaneous-hang
    /// case (hardware glitch, thermal shutdown, vendor firmware lockup)
    /// where the device stops responding but no splat ever reaches the
    /// log. Fault injection uses this to model device loss that the host
    /// cannot attribute to a fuzzer-found bug.
    pub fn force_wedge(&mut self) {
        self.wedged = true;
    }

    /// Number of pending (undrained) reports.
    pub fn pending(&self) -> usize {
        self.reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warning_is_not_fatal_but_kasan_is() {
        assert!(!BugKind::Warning.is_fatal());
        assert!(BugKind::KasanUseAfterFree.is_fatal());
        assert!(BugKind::SoftLockup.is_fatal());
        assert!(!BugKind::NativeCrash.is_fatal());
    }

    #[test]
    fn memory_bug_classification() {
        assert!(BugKind::KasanInvalidAccess.is_memory_bug());
        assert!(BugKind::NativeCrash.is_memory_bug());
        assert!(!BugKind::Warning.is_memory_bug());
        assert!(!BugKind::SoftLockup.is_memory_bug());
    }

    #[test]
    fn at_site_formats_title_like_syzkaller() {
        let r = BugReport::at_site(BugKind::Warning, "rt1711_i2c_probe", Component::KernelDriver);
        assert_eq!(r.title, "WARNING in rt1711_i2c_probe");
        assert!(r.log.contains("rt1711_i2c_probe"));
    }

    #[test]
    fn sink_wedges_on_fatal() {
        let mut sink = BugSink::new();
        sink.push(BugReport::at_site(
            BugKind::Warning,
            "x",
            Component::KernelDriver,
        ));
        assert!(!sink.is_wedged());
        sink.push(BugReport::at_site(
            BugKind::Panic,
            "y",
            Component::KernelSubsystem,
        ));
        assert!(sink.is_wedged());
        assert_eq!(sink.take().len(), 2);
        assert_eq!(sink.pending(), 0);
        // wedged persists after draining reports
        assert!(sink.is_wedged());
    }
}
