//! The system-call surface of the simulated kernel.
//!
//! Only the calls that matter for driver fuzzing are modelled: file
//! lifecycle (`openat`/`close`/`dup`), data plane (`read`/`write`/`mmap`),
//! the driver control plane (`ioctl`), readiness (`poll`), and the
//! Bluetooth socket family (`socket`/`bind`/`connect`/`listen`/`accept`)
//! that the HCI/L2CAP drivers are reached through.

use crate::errno::Errno;
use crate::fd::Fd;
use std::fmt;

/// Syscall numbers, used by trace events and by the fuzzer's specialized
/// syscall-ID lookup table (§IV-D of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyscallNr {
    /// `openat(2)`
    Openat,
    /// `close(2)`
    Close,
    /// `read(2)`
    Read,
    /// `write(2)`
    Write,
    /// `ioctl(2)`
    Ioctl,
    /// `mmap(2)`
    Mmap,
    /// `poll(2)`
    Poll,
    /// `dup(2)`
    Dup,
    /// `socket(2)`
    Socket,
    /// `bind(2)`
    Bind,
    /// `connect(2)`
    Connect,
    /// `listen(2)`
    Listen,
    /// `accept(2)`
    Accept,
}

impl SyscallNr {
    /// All syscall numbers, in a stable order (used to compile the
    /// specialized-ID lookup table at fuzzer initialization).
    pub fn all() -> &'static [SyscallNr] {
        use SyscallNr::*;
        &[
            Openat, Close, Read, Write, Ioctl, Mmap, Poll, Dup, Socket, Bind, Connect, Listen,
            Accept,
        ]
    }

    /// The syscall's name as it appears in strace-style logs.
    pub fn name(self) -> &'static str {
        match self {
            SyscallNr::Openat => "openat",
            SyscallNr::Close => "close",
            SyscallNr::Read => "read",
            SyscallNr::Write => "write",
            SyscallNr::Ioctl => "ioctl",
            SyscallNr::Mmap => "mmap",
            SyscallNr::Poll => "poll",
            SyscallNr::Dup => "dup",
            SyscallNr::Socket => "socket",
            SyscallNr::Bind => "bind",
            SyscallNr::Connect => "connect",
            SyscallNr::Listen => "listen",
            SyscallNr::Accept => "accept",
        }
    }
}

impl fmt::Display for SyscallNr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Socket domain constants (only `AF_BLUETOOTH` reaches a driver here).
pub mod af {
    /// `AF_BLUETOOTH`
    pub const BLUETOOTH: u32 = 31;
}

/// Bluetooth socket protocols.
pub mod btproto {
    /// Raw HCI channel.
    pub const HCI: u32 = 1;
    /// L2CAP channel.
    pub const L2CAP: u32 = 0;
}

/// A system-call invocation with its arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Open the device node at `path`.
    Openat {
        /// Absolute `/dev/...` path.
        path: String,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// Read up to `len` bytes.
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Maximum byte count.
        len: usize,
    },
    /// Write `data`.
    Write {
        /// Target descriptor.
        fd: Fd,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Driver control call.
    Ioctl {
        /// Target descriptor.
        fd: Fd,
        /// Request code (the paper's "critical position argument").
        request: u32,
        /// Serialized argument structure.
        arg: Vec<u8>,
    },
    /// Map `len` bytes of the device.
    Mmap {
        /// Target descriptor.
        fd: Fd,
        /// Mapping length.
        len: usize,
        /// Protection bits (`PROT_READ`=1, `PROT_WRITE`=2).
        prot: u32,
    },
    /// Poll for readiness.
    Poll {
        /// Target descriptor.
        fd: Fd,
        /// Requested event mask.
        events: u32,
    },
    /// Duplicate a descriptor.
    Dup {
        /// Descriptor to duplicate.
        fd: Fd,
    },
    /// Create a socket.
    Socket {
        /// Address family (`af::*`).
        domain: u32,
        /// Socket type (1 = stream, 2 = dgram, 3 = raw).
        ty: u32,
        /// Protocol (`btproto::*`).
        proto: u32,
    },
    /// Bind a socket to a local address/device id.
    Bind {
        /// Socket descriptor.
        fd: Fd,
        /// Device index / PSM, family-specific.
        addr: u64,
    },
    /// Connect a socket to a remote address.
    Connect {
        /// Socket descriptor.
        fd: Fd,
        /// Remote address, family-specific.
        addr: u64,
    },
    /// Mark a socket as accepting connections.
    Listen {
        /// Socket descriptor.
        fd: Fd,
        /// Backlog length.
        backlog: u32,
    },
    /// Accept a pending connection; returns a new descriptor.
    Accept {
        /// Listening socket descriptor.
        fd: Fd,
    },
}

impl Syscall {
    /// The syscall number of this invocation.
    pub fn nr(&self) -> SyscallNr {
        match self {
            Syscall::Openat { .. } => SyscallNr::Openat,
            Syscall::Close { .. } => SyscallNr::Close,
            Syscall::Read { .. } => SyscallNr::Read,
            Syscall::Write { .. } => SyscallNr::Write,
            Syscall::Ioctl { .. } => SyscallNr::Ioctl,
            Syscall::Mmap { .. } => SyscallNr::Mmap,
            Syscall::Poll { .. } => SyscallNr::Poll,
            Syscall::Dup { .. } => SyscallNr::Dup,
            Syscall::Socket { .. } => SyscallNr::Socket,
            Syscall::Bind { .. } => SyscallNr::Bind,
            Syscall::Connect { .. } => SyscallNr::Connect,
            Syscall::Listen { .. } => SyscallNr::Listen,
            Syscall::Accept { .. } => SyscallNr::Accept,
        }
    }

    /// The "critical position argument" used to specialize generic
    /// syscalls into unique feedback IDs (§IV-D): the `request` code for
    /// `ioctl`, the protocol for `socket`, zero otherwise.
    pub fn critical_arg(&self) -> u64 {
        match self {
            Syscall::Ioctl { request, .. } => u64::from(*request),
            Syscall::Socket { domain, proto, .. } => (u64::from(*domain) << 32) | u64::from(*proto),
            _ => 0,
        }
    }
}

/// The result of a system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallRet {
    /// Success with a scalar value (byte counts, poll masks, zero).
    Ok(u64),
    /// Success returning a new file descriptor.
    NewFd(Fd),
    /// Success returning data read from the device.
    Data(Vec<u8>),
    /// Failure with an errno.
    Err(Errno),
}

impl SyscallRet {
    /// Extracts the descriptor from a `NewFd` result.
    ///
    /// # Errors
    ///
    /// Returns the original errno for `Err` results, or `EINVAL` when the
    /// call succeeded but did not produce a descriptor.
    pub fn fd(self) -> Result<Fd, Errno> {
        match self {
            SyscallRet::NewFd(fd) => Ok(fd),
            SyscallRet::Err(e) => Err(e),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Extracts the scalar from an `Ok` result (zero for `NewFd`/`Data`).
    ///
    /// # Errors
    ///
    /// Returns the errno for `Err` results.
    pub fn ok(self) -> Result<u64, Errno> {
        match self {
            SyscallRet::Ok(v) => Ok(v),
            SyscallRet::NewFd(fd) => Ok(u64::from(fd.0)),
            SyscallRet::Data(d) => Ok(d.len() as u64),
            SyscallRet::Err(e) => Err(e),
        }
    }

    /// Whether the call succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, SyscallRet::Err(_))
    }

    /// The errno of a failed call, if any.
    pub fn errno(&self) -> Option<Errno> {
        match self {
            SyscallRet::Err(e) => Some(*e),
            _ => None,
        }
    }
}

impl From<Errno> for SyscallRet {
    fn from(e: Errno) -> Self {
        SyscallRet::Err(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nr_roundtrip_covers_every_variant() {
        let calls = [
            Syscall::Openat { path: "/dev/null".into() },
            Syscall::Close { fd: Fd(3) },
            Syscall::Read { fd: Fd(3), len: 8 },
            Syscall::Write { fd: Fd(3), data: vec![1] },
            Syscall::Ioctl { fd: Fd(3), request: 0xc0044901, arg: vec![] },
            Syscall::Mmap { fd: Fd(3), len: 4096, prot: 3 },
            Syscall::Poll { fd: Fd(3), events: 1 },
            Syscall::Dup { fd: Fd(3) },
            Syscall::Socket { domain: af::BLUETOOTH, ty: 3, proto: btproto::HCI },
            Syscall::Bind { fd: Fd(3), addr: 0 },
            Syscall::Connect { fd: Fd(3), addr: 1 },
            Syscall::Listen { fd: Fd(3), backlog: 4 },
            Syscall::Accept { fd: Fd(3) },
        ];
        let nrs: Vec<SyscallNr> = calls.iter().map(Syscall::nr).collect();
        assert_eq!(nrs, SyscallNr::all());
    }

    #[test]
    fn critical_arg_specializes_ioctl_and_socket() {
        let io = Syscall::Ioctl { fd: Fd(0), request: 0xdead, arg: vec![] };
        assert_eq!(io.critical_arg(), 0xdead);
        let so = Syscall::Socket { domain: af::BLUETOOTH, ty: 3, proto: btproto::L2CAP };
        assert_eq!(so.critical_arg(), (u64::from(af::BLUETOOTH) << 32));
        let rd = Syscall::Read { fd: Fd(0), len: 1 };
        assert_eq!(rd.critical_arg(), 0);
    }

    #[test]
    fn ret_accessors() {
        assert_eq!(SyscallRet::Ok(7).ok(), Ok(7));
        assert_eq!(SyscallRet::NewFd(Fd(5)).fd(), Ok(Fd(5)));
        assert_eq!(SyscallRet::Err(Errno::EBADF).fd(), Err(Errno::EBADF));
        assert_eq!(SyscallRet::Ok(0).fd(), Err(Errno::EINVAL));
        assert!(SyscallRet::Data(vec![1, 2]).is_ok());
        assert_eq!(SyscallRet::Data(vec![1, 2]).ok(), Ok(2));
        assert_eq!(SyscallRet::Err(Errno::EIO).errno(), Some(Errno::EIO));
    }
}
