//! Trace hooks: the simulated stand-in for the eBPF probes DroidFuzz
//! attaches to observe system calls (and, during probing, Binder traffic)
//! originating from specific processes.
//!
//! A consumer attaches a [`TraceSession`] with a [`TraceFilter`]; the kernel
//! appends a [`SyscallEvent`] per matching syscall, preserving order (the
//! *directional* property §IV-D relies on). Sessions are ring buffers so a
//! runaway execution cannot exhaust memory.

use crate::syscall::SyscallNr;
use std::fmt;

/// Who issued a syscall: the fuzzer's native executor, a HAL service
/// process, or some other system process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// The native executor (direct syscall payloads).
    Native,
    /// A HAL service process; the tag identifies the service.
    Hal(u32),
    /// Unrelated system process (init, framework, …).
    System,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Native => f.write_str("native"),
            Origin::Hal(tag) => write!(f, "hal#{tag}"),
            Origin::System => f.write_str("system"),
        }
    }
}

/// One observed syscall, as delivered by a trace hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallEvent {
    /// Issuing context.
    pub origin: Origin,
    /// Syscall number.
    pub nr: SyscallNr,
    /// Critical position argument (e.g. `ioctl` request code).
    pub critical: u64,
    /// Device node path, when the call targeted a devfs node.
    pub path: Option<String>,
    /// Whether the call succeeded.
    pub ok: bool,
}

/// Which events a session wants to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFilter {
    /// All syscalls from any origin.
    #[default]
    All,
    /// Only syscalls issued by HAL processes (any tag).
    HalOnly,
    /// Only syscalls issued by the HAL process with this tag.
    HalTag(u32),
    /// Only syscalls issued by the native executor.
    NativeOnly,
}

impl TraceFilter {
    /// Whether an event from `origin` passes this filter.
    pub fn matches(self, origin: Origin) -> bool {
        match (self, origin) {
            (TraceFilter::All, _) => true,
            (TraceFilter::HalOnly, Origin::Hal(_)) => true,
            (TraceFilter::HalTag(t), Origin::Hal(o)) => t == o,
            (TraceFilter::NativeOnly, Origin::Native) => true,
            _ => false,
        }
    }
}

/// Capacity of a session's ring buffer.
pub const SESSION_CAPACITY: usize = 64 * 1024;

/// Handle identifying an attached trace session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u32);

/// An attached probe: filter plus event buffer.
#[derive(Debug, Clone)]
pub struct TraceSession {
    /// Which events are recorded.
    pub filter: TraceFilter,
    events: Vec<SyscallEvent>,
    dropped: usize,
}

impl TraceSession {
    /// Creates an empty session with the given filter.
    pub fn new(filter: TraceFilter) -> Self {
        Self {
            filter,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Records `event` if it passes the filter; drops (and counts) events
    /// past capacity.
    pub fn record(&mut self, event: &SyscallEvent) {
        if !self.filter.matches(event.origin) {
            return;
        }
        if self.events.len() >= SESSION_CAPACITY {
            self.dropped += 1;
            return;
        }
        self.events.push(event.clone());
    }

    /// Drains all buffered events in arrival order.
    pub fn drain(&mut self) -> Vec<SyscallEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains all buffered events into `out` in arrival order, keeping the
    /// session's buffer allocation. The reuse-friendly form of
    /// [`drain`](Self::drain).
    pub fn drain_into(&mut self, out: &mut Vec<SyscallEvent>) {
        out.append(&mut self.events);
    }

    /// Number of events dropped due to buffer overflow.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(origin: Origin) -> SyscallEvent {
        SyscallEvent {
            origin,
            nr: SyscallNr::Ioctl,
            critical: 0x1234,
            path: Some("/dev/x".into()),
            ok: true,
        }
    }

    #[test]
    fn filters_match_expected_origins() {
        assert!(TraceFilter::All.matches(Origin::System));
        assert!(TraceFilter::HalOnly.matches(Origin::Hal(3)));
        assert!(!TraceFilter::HalOnly.matches(Origin::Native));
        assert!(TraceFilter::HalTag(3).matches(Origin::Hal(3)));
        assert!(!TraceFilter::HalTag(3).matches(Origin::Hal(4)));
        assert!(TraceFilter::NativeOnly.matches(Origin::Native));
        assert!(!TraceFilter::NativeOnly.matches(Origin::Hal(1)));
    }

    #[test]
    fn session_records_in_order_and_drains() {
        let mut s = TraceSession::new(TraceFilter::HalOnly);
        s.record(&ev(Origin::Native));
        s.record(&ev(Origin::Hal(1)));
        s.record(&ev(Origin::Hal(2)));
        assert_eq!(s.len(), 2);
        let events = s.drain();
        assert_eq!(events[0].origin, Origin::Hal(1));
        assert_eq!(events[1].origin, Origin::Hal(2));
        assert!(s.is_empty());
    }

    #[test]
    fn session_drops_past_capacity() {
        let mut s = TraceSession::new(TraceFilter::All);
        for _ in 0..SESSION_CAPACITY + 5 {
            s.record(&ev(Origin::Native));
        }
        assert_eq!(s.len(), SESSION_CAPACITY);
        assert_eq!(s.dropped(), 5);
    }
}
