//! Ablation mini-study on one device: run all six fuzzer variants side by
//! side and print coverage, executions, and bugs — a small-scale version
//! of the paper's §V-C/§V-D analysis.
//!
//! ```sh
//! cargo run --release --example ablation [device-id] [virtual-hours]
//! ```

use droidfuzz_repro::droidfuzz::{FuzzerConfig, FuzzingEngine};
use droidfuzz_repro::simdevice::catalog;
use std::sync::Mutex;

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "A1".into());
    let hours: f64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(12.0);
    let spec = catalog::by_id(&id).unwrap_or_else(|| {
        eprintln!("unknown device id {id}");
        std::process::exit(1);
    });
    type Make = fn(u64) -> FuzzerConfig;
    let variants: Vec<Make> = vec![
        FuzzerConfig::droidfuzz,
        FuzzerConfig::droidfuzz_norel,
        FuzzerConfig::droidfuzz_nohcov,
        FuzzerConfig::droidfuzz_d,
        FuzzerConfig::syzkaller,
        FuzzerConfig::difuze,
    ];
    println!("device {id}, {hours} virtual hours per variant\n");
    let rows = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, make) in variants.iter().enumerate() {
            let rows = &rows;
            let spec = spec.clone();
            let make = *make;
            scope.spawn(move || {
                let mut engine = FuzzingEngine::new(spec.boot(), make(3));
                engine.run_for_virtual_hours(hours);
                rows.lock().expect("no poisoning").push((
                    i,
                    make(3).variant.to_string(),
                    engine.kernel_coverage(),
                    engine.executions(),
                    engine
                        .crash_db()
                        .records()
                        .iter()
                        .map(|r| r.title.clone())
                        .collect::<Vec<_>>(),
                ));
            });
        }
    });
    let mut rows = rows.into_inner().expect("no poisoning");
    rows.sort_by_key(|(i, ..)| *i);
    for (_, name, cov, execs, bugs) in rows {
        println!("{name:<12} coverage={cov:<6} executions={execs:<7} bugs={bugs:?}");
    }
}
