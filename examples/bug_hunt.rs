//! Bug hunt: run DroidFuzz on every Table I device until each device's
//! catalog bugs are found (or a virtual-time budget runs out), printing
//! crash reports with minimized reproducers as they appear.
//!
//! ```sh
//! cargo run --release --example bug_hunt [virtual-hours-per-device]
//! ```

use droidfuzz_repro::droidfuzz::{FuzzerConfig, FuzzingEngine};
use droidfuzz_repro::simdevice::bugs::{bugs_on, identify};
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simkernel::report::BugReport;
use std::sync::Mutex;

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(24.0);
    let found = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for spec in catalog::all_devices() {
            let found = &found;
            scope.spawn(move || {
                let id = spec.meta.id.clone();
                let expected = bugs_on(&id).len();
                let mut engine = FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz(99));
                let step_hours = 2.0;
                let mut elapsed = 0.0;
                while elapsed < hours && engine.crash_db().len() < expected {
                    engine.run_for_virtual_hours(step_hours);
                    elapsed += step_hours;
                }
                let mut lines = format!(
                    "== {id}: {}/{expected} bugs in {elapsed:.0} virtual hours ==\n",
                    engine.crash_db().len()
                );
                for crash in engine.crash_db().records() {
                    let report =
                        BugReport::with_title(crash.kind, crash.title.clone(), crash.component);
                    let tag = identify(&report)
                        .map_or("unlisted".to_owned(), |kb| format!("Table II #{}", kb.id.0));
                    lines.push_str(&format!("  [{tag}] {} ({})\n", crash.title, crash.component));
                }
                *found.lock().expect("no poisoning") += engine.crash_db().len();
                print!("{lines}");
            });
        }
    });
    println!("\ntotal distinct crashes across the fleet: {}", found.into_inner().unwrap());
}
