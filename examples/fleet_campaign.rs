//! Fleet orchestration: run a small synced shard fleet on one device,
//! checkpoint it mid-campaign, resume from the snapshot, and replay the
//! same campaign on flaky (fault-injected) devices.
//!
//! ```sh
//! cargo run --release --example fleet_campaign
//! ```

use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig};
use droidfuzz_repro::droidfuzz::FuzzerConfig;
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simdevice::faults::FaultProfile;

fn main() {
    let spec = catalog::device_a1();
    let config = FleetConfig {
        shards: 3,
        hours: 0.5,
        sync_interval_hours: 0.1,
        ..FleetConfig::default()
    };

    // A synced fleet: shards publish seeds + relation weights to the hub
    // every sync round and pull what their peers found.
    let result = Fleet::new(config.clone()).run(&spec, FuzzerConfig::droidfuzz);
    println!("{}", result.stats.render());
    println!(
        "union coverage {} blocks over {} executions, {} distinct crashes",
        result.union_coverage,
        result.executions,
        result.crashes.len()
    );

    // Kill the same campaign after its first sync round, then resume from
    // the text snapshot it left behind.
    let killed = Fleet::new(FleetConfig { kill_after_rounds: Some(1), ..config.clone() })
        .run(&spec, FuzzerConfig::droidfuzz);
    println!(
        "\nkilled after round {} ({} bytes of snapshot); resuming...",
        killed.rounds_completed,
        killed.snapshot.len()
    );
    let resumed = Fleet::new(config.clone())
        .resume(&spec, FuzzerConfig::droidfuzz, &killed.snapshot)
        .expect("snapshot parses");
    println!(
        "resumed to round {} (finished: {}), union coverage {} -> {}",
        resumed.rounds_completed,
        resumed.finished,
        killed.union_coverage,
        resumed.union_coverage
    );

    // The same fleet on flaky devices: the supervisor absorbs link
    // drops, HAL deaths, hangs, and reboots; lost shards restart from
    // hub state, so the campaign still completes.
    let flaky = Fleet::new(config).run(&spec, |seed| {
        FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Flaky)
    });
    let f = &flaky.fault_totals;
    println!(
        "\nflaky devices: union coverage {} (finished: {}) — {} faults injected, \
         {} retries, {} hangs, {} device losses, {} shard restarts",
        flaky.union_coverage,
        flaky.finished,
        f.injected,
        f.transient_retries,
        f.hangs,
        f.device_lost,
        flaky.stats.shard_restarts,
    );
}
