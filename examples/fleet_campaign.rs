//! Fleet orchestration: run a small synced shard fleet on one device,
//! checkpoint it mid-campaign, and resume from the snapshot.
//!
//! ```sh
//! cargo run --release --example fleet_campaign
//! ```

use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig};
use droidfuzz_repro::droidfuzz::FuzzerConfig;
use droidfuzz_repro::simdevice::catalog;

fn main() {
    let spec = catalog::device_a1();
    let config = FleetConfig {
        shards: 3,
        hours: 0.5,
        sync_interval_hours: 0.1,
        ..FleetConfig::default()
    };

    // A synced fleet: shards publish seeds + relation weights to the hub
    // every sync round and pull what their peers found.
    let result = Fleet::new(config.clone()).run(&spec, FuzzerConfig::droidfuzz);
    println!("{}", result.stats.render());
    println!(
        "union coverage {} blocks over {} executions, {} distinct crashes",
        result.union_coverage,
        result.executions,
        result.crashes.len()
    );

    // Kill the same campaign after its first sync round, then resume from
    // the text snapshot it left behind.
    let killed = Fleet::new(FleetConfig { kill_after_rounds: Some(1), ..config.clone() })
        .run(&spec, FuzzerConfig::droidfuzz);
    println!(
        "\nkilled after round {} ({} bytes of snapshot); resuming...",
        killed.rounds_completed,
        killed.snapshot.len()
    );
    let resumed = Fleet::new(config)
        .resume(&spec, FuzzerConfig::droidfuzz, &killed.snapshot)
        .expect("snapshot parses");
    println!(
        "resumed to round {} (finished: {}), union coverage {} -> {}",
        resumed.rounds_completed,
        resumed.finished,
        killed.union_coverage,
        resumed.union_coverage
    );
}
