//! Pre-testing HAL driver probing (paper §IV-B) on its own: enumerate a
//! device's HAL services, trial every method, and print the extracted
//! interfaces with their learned argument types and normalized-occurrence
//! weights.
//!
//! ```sh
//! cargo run --release --example hal_probe [device-id]
//! ```

use droidfuzz_repro::droidfuzz::probe::probe_device;
use droidfuzz_repro::simdevice::catalog;

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "A1".into());
    let spec = catalog::by_id(&id).unwrap_or_else(|| {
        eprintln!("unknown device id {id}; use one of A1 A2 B C1 C2 D E");
        std::process::exit(1);
    });
    let mut device = spec.boot();
    println!("probing {} ({} services via lshal)\n", id, device.service_manager().len());
    let report = probe_device(&mut device);
    let mut current_service = String::new();
    for m in &report.methods {
        if m.service != current_service {
            current_service = m.service.clone();
            println!("{current_service}");
        }
        let args: Vec<String> = m.args.iter().map(|a| format!("{a:?}")).collect();
        println!(
            "  [{}] {}({}) weight={:.2}{}{}",
            m.code,
            m.method,
            args.join(", "),
            m.weight,
            if m.produces_handle { " -> handle" } else { "" },
            if m.kernel_events > 0 {
                format!("  ({} kernel events observed)", m.kernel_events)
            } else {
                String::new()
            },
        );
    }
    println!(
        "\nextracted {} interfaces; device rebooted to pristine state (boot #{})",
        report.interface_count(),
        device.boot_count()
    );
}
