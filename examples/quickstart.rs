//! Quickstart: fuzz one simulated embedded Android device for an hour of
//! virtual time and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use droidfuzz_repro::droidfuzz::{FuzzerConfig, FuzzingEngine};
use droidfuzz_repro::simdevice::catalog;

fn main() {
    // Boot the Xiaomi Phone Dev Board model (Table I, device A1) with its
    // four Table II bugs armed in the firmware.
    let device = catalog::device_a1().boot();
    println!(
        "booted {} {} (AOSP {}, kernel {})",
        device.spec().meta.vendor,
        device.spec().meta.name,
        device.spec().meta.aosp,
        device.spec().meta.kernel
    );

    // Full DroidFuzz: HAL probing + relational generation + cross-boundary
    // feedback. The constructor runs the pre-testing probing pass.
    let mut engine = FuzzingEngine::new(device, FuzzerConfig::droidfuzz(2024));
    println!(
        "probed {} HAL interfaces across {} services",
        engine.probe_report().map_or(0, |r| r.interface_count()),
        engine.probe_report().map_or(0, |r| r.services),
    );

    engine.run_for_virtual_hours(1.0);

    println!(
        "\nafter 1 virtual hour: {} executions, {} kernel blocks covered, {} corpus seeds, {} learned relations",
        engine.executions(),
        engine.kernel_coverage(),
        engine.corpus().len(),
        engine.relation_graph().edge_count(),
    );
    for crash in engine.crash_db().records() {
        println!("crash: {} [{}] x{}", crash.title, crash.component, crash.count);
        if let Some(repro) = &crash.repro {
            println!("  reproducer:\n{}", indent(repro));
        }
    }
    if engine.crash_db().is_empty() {
        println!("no crashes yet — try more virtual hours (the deep bugs take longer)");
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
