//! Relation explorer: fuzz a device briefly, then dump the learned
//! kernel↔HAL relation graph (paper §IV-C) — the heaviest dependencies the
//! fuzzer discovered between HAL interfaces and system calls.
//!
//! ```sh
//! cargo run --release --example relation_explorer [device-id]
//! ```

use droidfuzz_repro::droidfuzz::{FuzzerConfig, FuzzingEngine};
use droidfuzz_repro::simdevice::catalog;

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "A2".into());
    let spec = catalog::by_id(&id).unwrap_or_else(|| {
        eprintln!("unknown device id {id}");
        std::process::exit(1);
    });
    let mut engine = FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz(5));
    engine.run_for_virtual_hours(4.0);

    let table = engine.desc_table();
    let graph = engine.relation_graph();
    println!(
        "device {id}: {} vertices, {} learned edges after {} executions\n",
        graph.vertex_count(),
        graph.edge_count(),
        engine.executions()
    );
    println!("the 25 heaviest learned relations (a → b, weight):");
    for (a, b, w) in graph.top_edges(25) {
        println!("  {:<40} → {:<40} {w:.3}", table.get(a).name, table.get(b).name);
    }

    // Cross-boundary edges are the interesting ones: HAL method on one
    // side, raw syscall on the other.
    let cross: Vec<_> = graph
        .top_edges(usize::MAX)
        .into_iter()
        .filter(|(a, b, _)| table.get(*a).kind.is_hal() != table.get(*b).kind.is_hal())
        .take(15)
        .collect();
    println!("\nheaviest cross-boundary (HAL ↔ syscall) relations:");
    for (a, b, w) in cross {
        println!("  {:<40} → {:<40} {w:.3}", table.get(a).name, table.get(b).name);
    }
}
