import re
raw = open('experiments_raw.txt').read()
sections = {}
cur = None
for line in raw.splitlines(keepends=True):
    if line.startswith('### '):
        cur = line[4:].split()[0]
        sections[cur] = ''
    elif cur:
        sections[cur] += line
mapping = {
    '(TABLE1)': sections.get('table1','(missing)').strip(),
    '(TABLE2)': sections.get('table2','(missing)').strip(),
    '(TABLE3)': sections.get('table3','(missing)').strip(),
    '(FIG4)': '\n'.join(
        l for l in sections.get('fig4','(missing)').splitlines()
        if not re.match(r'\s*[0-9]+\.[0-9]+,', l) and not l.strip().startswith('t(h)')
    ).strip(),
    '(FIG5)': sections.get('fig5','(missing)').strip(),
    '(DRIVERCOV)': sections.get('driver_cov','(missing)').strip(),
}
doc = open('EXPERIMENTS.md').read()
for k, v in mapping.items():
    doc = doc.replace(k, v)
open('EXPERIMENTS.md','w').write(doc)
print('filled')
