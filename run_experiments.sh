#!/bin/sh
# Recorded-run scale (single core): reduced hours/repeats; see EXPERIMENTS.md.
set -e
B=./target/release
{
  echo "### table1"
  $B/table1
  echo "### table2 (DF_HOURS=48 DF_REPEATS=2)"
  DF_HOURS=48 DF_REPEATS=2 $B/table2
  echo "### table3 (DF_HOURS=12 DF_REPEATS=2)"
  DF_HOURS=12 DF_REPEATS=2 $B/table3
  echo "### fig4 (DF_HOURS=12 DF_REPEATS=2)"
  DF_HOURS=12 DF_REPEATS=2 $B/fig4
  echo "### fig5 (DF_HOURS=12 DF_REPEATS=2)"
  DF_HOURS=12 DF_REPEATS=2 $B/fig5
  echo "### driver_cov (DF_HOURS=12)"
  DF_HOURS=12 $B/driver_cov
} > experiments_raw.txt 2>&1
echo EXPERIMENTS-DONE
