#!/bin/sh
# Recorded-run scale (single core): reduced hours/repeats; see EXPERIMENTS.md.
set -e
B=./target/release
{
  echo "### table1"
  $B/table1
  echo "### table2 (DF_HOURS=48 DF_REPEATS=2)"
  DF_HOURS=48 DF_REPEATS=2 $B/table2
  echo "### table3 (DF_HOURS=12 DF_REPEATS=2)"
  DF_HOURS=12 DF_REPEATS=2 $B/table3
  echo "### fig4 (DF_HOURS=12 DF_REPEATS=2)"
  DF_HOURS=12 DF_REPEATS=2 $B/fig4
  echo "### fig5 (DF_HOURS=12 DF_REPEATS=2)"
  DF_HOURS=12 DF_REPEATS=2 $B/fig5
  echo "### driver_cov (DF_HOURS=12)"
  DF_HOURS=12 $B/driver_cov
  echo "### fleet exec_batch (DF_BATCH_PROGS=2000 DF_BATCH=32)"
  DF_HOURS=0.2 DF_SHARDS=2 DF_SYNC_MIN=7.5 DF_PAR_SHARDS=4 DF_PAR_HOURS=0.1 \
  DF_BATCH_PROGS=2000 DF_BATCH_HOURS=0.1 $B/fleet
} > experiments_raw.txt 2>&1
grep -o '{"bench":"exec_batch".*}' experiments_raw.txt > BENCH_exec.json
grep -o '{"bench":"fleet_parallel".*}' experiments_raw.txt >> BENCH_exec.json
echo EXPERIMENTS-DONE
