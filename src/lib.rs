//! # droidfuzz-repro — umbrella crate
//!
//! Re-exports every crate of the DroidFuzz (DAC'25) reproduction workspace
//! so the `examples/` and `tests/` at the repository root can use a single
//! dependency. See the README for the architecture overview and
//! `DESIGN.md` for the paper-to-module mapping.
//!
//! ```
//! use droidfuzz_repro::simdevice::catalog;
//!
//! let devices = catalog::all_devices();
//! assert_eq!(devices.len(), 7);
//! ```

pub use droidfuzz;
pub use droidfuzz_analysis;
pub use fuzzlang;
pub use simbinder;
pub use simdevice;
pub use simhal;
pub use simkernel;
