//! Cross-validation of the flow-sensitive abstract interpreter against
//! the real `simkernel` drivers.
//!
//! The soundness contract under test: absint only *claims* a call fires
//! (`fired[i]`) or counts depth when the model guarantees it, so for any
//! program — generated, mutated, or repaired — executed on a freshly
//! booted device,
//!
//! 1. every claimed call succeeds dynamically (`fired[i] ⇒ call_results[i]`),
//! 2. the static depth score is a lower bound on the number of successful
//!    calls (each depth point is a distinct claimed state-changing call),
//! 3. the analysis is invariant under a text round-trip:
//!    `absint(parse(print(p))) == absint(p)`.
//!
//! Fixture programs under `tests/fixtures/lint/absint/` pin one concrete
//! trigger per new diagnostic code; the CI `static-model` job runs
//! `droidfuzz-lint` over the same files.

use droidfuzz_repro::droidfuzz::descs::build_syscall_table;
use droidfuzz_repro::droidfuzz::exec::Broker;
use droidfuzz_repro::droidfuzz_analysis::{
    absint_prog, gate_prog_static, repair_prereqs, LintCounters, ModelSet, Severity,
};
use droidfuzz_repro::fuzzlang::desc::DescTable;
use droidfuzz_repro::fuzzlang::prog::Prog;
use droidfuzz_repro::fuzzlang::text::{format_prog, parse_prog};
use droidfuzz_repro::simdevice::{catalog, Device};
use proptest::prelude::*;
use rand::SeedableRng;

/// Boots the catalog device at `idx` (mod 7) and derives the Syzlang
/// vocabulary plus its state models.
fn fresh_device(idx: usize) -> (Device, DescTable, ModelSet) {
    let specs = catalog::all_devices();
    let spec = specs.into_iter().cycle().nth(idx).expect("catalog is non-empty");
    let mut device = spec.boot();
    let table = build_syscall_table(device.kernel());
    let models = ModelSet::for_kernel(device.kernel());
    (device, table, models)
}

/// Asserts the three soundness properties for `prog` on a fresh `device`.
fn assert_sound(
    device: &mut Device,
    table: &DescTable,
    models: &ModelSet,
    prog: &Prog,
) -> Result<(), String> {
    let result = absint_prog(prog, table, models);
    let text = format_prog(prog, table);

    // Round-trip invariance.
    let reparsed = parse_prog(&text, table).expect("own output reparses");
    prop_assert_eq!(&reparsed, prog, "text round-trip must be exact");
    prop_assert_eq!(
        absint_prog(&reparsed, table, models),
        result.clone(),
        "absint must be invariant under print/parse"
    );

    // Dynamic cross-validation.
    let outcome = Broker::new().execute(device, table, prog);
    for (i, &fired) in result.fired.iter().enumerate() {
        if fired {
            prop_assert!(
                outcome.call_results[i],
                "call {i} was claimed to fire but failed at runtime\n\
                 program:\n{text}\ncall results: {:?}",
                outcome.call_results
            );
        }
    }
    let successes = outcome.call_results.iter().filter(|&&ok| ok).count();
    prop_assert!(
        successes >= result.depth as usize,
        "static depth {} exceeds the {successes} dynamic successes\nprogram:\n{text}",
        result.depth
    );
    Ok(())
}

proptest! {
    /// Generated programs: absint never over-claims on any catalog device.
    #[test]
    fn absint_is_sound_on_generated_programs(
        seed in any::<u64>(),
        device_idx in 0usize..7,
        len in 1usize..10,
    ) {
        let (mut device, table, models) = fresh_device(device_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prog = droidfuzz_repro::fuzzlang::gen::generate(&table, len, &mut rng);
        assert_sound(&mut device, &table, &models, &prog)?;
    }

    /// Mutation chains keep the bound: soundness is a property of the
    /// analysis, not of the generator's politeness.
    #[test]
    fn absint_is_sound_on_mutated_programs(
        seed in any::<u64>(),
        device_idx in 0usize..7,
        mutations in 1usize..24,
    ) {
        let (mut device, table, models) = fresh_device(device_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut prog = droidfuzz_repro::fuzzlang::gen::generate(&table, 5, &mut rng);
        for _ in 0..mutations {
            droidfuzz_repro::fuzzlang::mutate::mutate(&mut prog, &table, &mut rng);
        }
        assert_sound(&mut device, &table, &models, &prog)?;
    }

    /// Prerequisite-repaired programs stay sound, and repair is
    /// deterministic: repairing the same program twice inserts the same
    /// calls at the same places.
    #[test]
    fn absint_is_sound_on_repaired_programs(
        seed in any::<u64>(),
        device_idx in 0usize..7,
        len in 1usize..8,
    ) {
        let (mut device, table, models) = fresh_device(device_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = droidfuzz_repro::fuzzlang::gen::generate(&table, len, &mut rng);

        let mut repaired = base.clone();
        let inserted = repair_prereqs(&mut repaired, &table, &models);
        let mut again = base.clone();
        prop_assert_eq!(repair_prereqs(&mut again, &table, &models), inserted);
        prop_assert_eq!(&again, &repaired, "repair must be deterministic");
        prop_assert_eq!(repaired.validate(&table), Ok(()));
        assert_sound(&mut device, &table, &models, &repaired)?;
    }

    /// The static gate itself is deterministic and only ever lets valid
    /// programs through — the engine trusts both properties.
    #[test]
    fn static_gate_is_deterministic(
        seed in any::<u64>(),
        device_idx in 0usize..7,
        len in 1usize..8,
    ) {
        let (_, table, models) = fresh_device(device_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = droidfuzz_repro::fuzzlang::gen::generate(&table, len, &mut rng);

        let mut first = base.clone();
        let mut second = base.clone();
        let mut counters = LintCounters::default();
        let pass_first = gate_prog_static(&mut first, &table, &models, &mut counters);
        let pass_second = gate_prog_static(&mut second, &table, &models, &mut counters);
        prop_assert_eq!(pass_first, pass_second);
        prop_assert_eq!(&first, &second);
        if pass_first {
            prop_assert_eq!(first.validate(&table), Ok(()));
        }
    }
}

/// Each fixture under `tests/fixtures/lint/absint/` pins exactly one new
/// diagnostic code (the directory must not grow unasserted files).
#[test]
fn absint_fixture_programs_trigger_their_codes() {
    let (_, table, models) = fresh_device(0); // device A1
    let expected = [
        ("dead-call.prog", "absint-dead-call", Severity::Warning),
        ("guard-violation.prog", "absint-guard-violation", Severity::Warning),
        (
            "consume-before-produce.prog",
            "absint-consume-before-produce",
            Severity::Warning,
        ),
        ("dead-prog.prog", "absint-dead-prog", Severity::Error),
    ];
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/lint/absint");
    for (file, code, severity) in expected {
        let text = std::fs::read_to_string(format!("{dir}/{file}"))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let prog = parse_prog(&text, &table).unwrap_or_else(|e| panic!("{file}: {e}"));
        let result = absint_prog(&prog, &table, &models);
        assert!(
            result
                .report
                .diagnostics
                .iter()
                .any(|d| d.code == code && d.severity == severity),
            "{file}: expected {severity:?} {code}, got {:?}",
            result.report.diagnostics
        );
    }
    let files = std::fs::read_dir(dir).expect("fixture dir exists").count();
    assert_eq!(files, expected.len(), "every fixture must be asserted above");
}

/// The dead-prog fixture is the one the static gate must rescue or
/// reject — it rescues it, by inserting the missing prerequisites.
#[test]
fn static_gate_repairs_the_dead_prog_fixture() {
    let (mut device, table, models) = fresh_device(0);
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/lint/absint");
    let text = std::fs::read_to_string(format!("{dir}/dead-prog.prog")).unwrap();
    let mut prog = parse_prog(&text, &table).unwrap();
    let mut counters = LintCounters::default();
    assert!(
        gate_prog_static(&mut prog, &table, &models, &mut counters),
        "the dead program is rescuable: VIDIOC_S_FMT/REQBUFS are insertable"
    );
    assert_eq!(counters.absint_repaired, 1);
    assert_eq!(counters.absint_rejected, 0);
    let result = absint_prog(&prog, &table, &models);
    assert!(!result.report.has_errors(), "{:?}", result.report.diagnostics);
    assert!(result.depth > 0, "repair must unlock real state progress");
    let outcome = Broker::new().execute(&mut device, &table, &prog);
    assert!(
        outcome.call_results.iter().all(|&ok| ok),
        "repaired program must run clean: {:?}",
        outcome.call_results
    );
}
