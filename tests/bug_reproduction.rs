//! Integration test: every Table II bug is reproducible with a hand-written
//! DSL program executed through the full stack (descriptions → broker →
//! device → kernel/HAL), on the device the paper found it on — and the
//! same trigger is benign on devices that don't arm it.

use droidfuzz_repro::droidfuzz::descs::build_syscall_table;
use droidfuzz_repro::droidfuzz::exec::Broker;
use droidfuzz_repro::droidfuzz::probe::{add_hal_descs, probe_device};
use droidfuzz_repro::fuzzlang::desc::DescTable;
use droidfuzz_repro::fuzzlang::prog::{ArgValue, Call, Prog};
use droidfuzz_repro::simdevice::bugs::identify;
use droidfuzz_repro::simdevice::{catalog, Device};

fn setup(device_id: &str) -> (Device, DescTable, Broker) {
    let mut device = catalog::by_id(device_id).expect("known device").boot();
    let mut table = build_syscall_table(device.kernel());
    let report = probe_device(&mut device);
    add_hal_descs(&mut table, &report);
    (device, table, Broker::new())
}

/// Builds a program from `(name, args)` pairs, panicking on unknown names.
fn prog(table: &DescTable, calls: &[(&str, Vec<ArgValue>)]) -> Prog {
    Prog {
        calls: calls
            .iter()
            .map(|(name, args)| Call {
                desc: table.id_of(name).unwrap_or_else(|| panic!("missing desc {name}")),
                args: args.clone(),
            })
            .collect(),
    }
}

fn int(v: u64) -> ArgValue {
    ArgValue::Int(v)
}

fn assert_bug(device_id: &str, calls: &[(&str, Vec<ArgValue>)], expect_id: u8) {
    let (mut device, table, mut broker) = setup(device_id);
    let p = prog(&table, calls);
    assert_eq!(p.validate(&table), Ok(()), "reproducer must be well-formed");
    let outcome = broker.execute(&mut device, &table, &p);
    let hit = outcome
        .bugs
        .iter()
        .filter_map(identify)
        .any(|kb| kb.id.0 == expect_id);
    assert!(
        hit,
        "bug #{expect_id} should fire on {device_id}; got {:?}",
        outcome.bugs.iter().map(|b| &b.title).collect::<Vec<_>>()
    );
}

fn assert_benign(device_id: &str, calls: &[(&str, Vec<ArgValue>)]) {
    let (mut device, table, mut broker) = setup(device_id);
    let p = prog(&table, calls);
    let outcome = broker.execute(&mut device, &table, &p);
    assert!(
        outcome.bugs.is_empty(),
        "expected benign on {device_id}, got {:?}",
        outcome.bugs.iter().map(|b| &b.title).collect::<Vec<_>>()
    );
}

fn composer_layers(n: usize) -> Vec<(&'static str, Vec<ArgValue>)> {
    let mut calls = vec![("hal$IComposer$init", vec![])];
    for i in 0..n {
        calls.push(("hal$IComposer$createLayer", vec![]));
        calls.push((
            "hal$IComposer$setLayerBuffer",
            vec![ArgValue::Ref(1 + 2 * i), int(64)],
        ));
    }
    calls
}

#[test]
fn bug_01_rt1711_probe_after_i2c_error() {
    let calls = [
        ("hal$IUsb$writeVendorRegister", vec![int(16), int(0)]),
        ("hal$IUsb$recoverController", vec![]),
    ];
    assert_bug("A1", &calls, 1);
    // Same chip recovery on A2's firmware (bug not armed) is benign.
    assert_benign("A2", &calls);
}

#[test]
fn bug_02_graphics_hal_crash_on_detached_present() {
    let mut calls = composer_layers(3);
    calls.push(("hal$IComposer$detachBuffer", vec![ArgValue::Ref(1)]));
    calls.push(("hal$IComposer$presentDisplay", vec![]));
    assert_bug("A1", &calls, 2);
    assert_benign("A2", &calls);
}

#[test]
fn bug_03_lockdep_subclass_via_import_chain() {
    let mut calls = composer_layers(4);
    calls.push(("hal$IComposer$presentDisplay", vec![]));
    assert_bug("A1", &calls, 3);
    assert_benign("A2", &calls);
}

#[test]
fn bug_04_pr_swap_while_unattached_with_vbus() {
    let calls = [
        ("hal$IUsb$overrideVbus", vec![int(1)]),
        ("hal$IUsb$switchPowerRole", vec![]),
    ];
    assert_bug("A1", &calls, 4);
    assert_benign("A2", &calls);
}

#[test]
fn bug_05_sensor_calibration_lockup() {
    let calls = [("hal$ISensors$calibrate", vec![int(2), int(0)])];
    assert_bug("A2", &calls, 5);
    assert_benign("A1", &calls);
}

#[test]
fn bug_06_media_flush_while_draining() {
    let calls = [
        ("hal$IComponentStore$createComponent", vec![int(1)]),
        ("hal$IComponentStore$configure", vec![int(1), int(1)]),
        ("hal$IComponentStore$start", vec![]),
        ("hal$IComponentStore$queueInput", vec![ArgValue::Bytes(vec![0u8; 16])]),
        ("hal$IComponentStore$drain", vec![]),
        ("hal$IComponentStore$flush", vec![]),
    ];
    assert_bug("A2", &calls, 6);
    assert_benign("A1", &calls);
}

#[test]
fn bug_07_hci_codecs_during_staged_init() {
    let calls = [
        ("hal$IBluetoothHci$enable", vec![int(1)]),
        ("hal$IBluetoothHci$readSupportedCodecs", vec![]),
    ];
    assert_bug("A2", &calls, 7);
    assert_benign("B", &calls);
}

#[test]
fn bug_08_l2cap_disconn_on_connectionless_channel() {
    // Native path — this is one of the two bugs syzkaller also finds.
    let calls = [
        ("socket$l2cap_dgram", vec![]),
        ("connect$l2cap", vec![ArgValue::Ref(0), int(0x99)]),
        ("ioctl$L2CAP_DISCONN_REQ", vec![ArgValue::Ref(0)]),
    ];
    assert_bug("B", &calls, 8);
    assert_benign("E", &calls);
}

#[test]
fn bug_09_camera_capture_after_teardown() {
    let calls = [
        ("hal$ICameraProvider$openSession", vec![]),
        ("hal$ICameraProvider$closeSession", vec![]),
        ("hal$ICameraProvider$processCaptureRequest", vec![]),
    ];
    assert_bug("C1", &calls, 9);
    assert_benign("C2", &calls);
}

#[test]
fn bug_10_rate_init_with_empty_rates() {
    let calls = [
        ("hal$IWifi$startScan", vec![]),
        ("hal$IWifi$getScanResults", vec![]),
        ("hal$IWifi$setSupportedRates", vec![int(0)]),
        ("hal$IWifi$connect", vec![int(0)]),
    ];
    assert_bug("C2", &calls, 10);
    assert_benign("C1", &calls);
}

#[test]
fn bug_11_accept_unlink_use_after_free() {
    let calls = [
        ("hal$IBluetoothHci$startServer", vec![int(1)]),
        ("hal$IBluetoothHci$acceptClient", vec![]),
        ("hal$IBluetoothHci$closeServer", vec![]),
        ("hal$IBluetoothHci$sendData", vec![ArgValue::Bytes(vec![1, 2, 3])]),
    ];
    assert_bug("D", &calls, 11);
    assert_benign("B", &calls);
}

#[test]
fn bug_12_querycap_with_wild_pointer() {
    // Native path — the other syzkaller-findable bug.
    let calls = [
        ("openat$/dev/video0", vec![]),
        ("ioctl$VIDIOC_QUERYCAP", vec![ArgValue::Ref(0), int(0xffff_ffff)]),
    ];
    assert_bug("E", &calls, 12);
    assert_benign("B", &calls);
}
