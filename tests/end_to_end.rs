//! Cross-crate end-to-end tests: full fuzzing campaigns exercising
//! simkernel + simbinder + simhal + simdevice + fuzzlang + droidfuzz
//! together.

use droidfuzz_repro::droidfuzz::baselines::{difuze, syz};
use droidfuzz_repro::droidfuzz::daemon::Daemon;
use droidfuzz_repro::droidfuzz::{FuzzerConfig, FuzzingEngine};
use droidfuzz_repro::simdevice::catalog;

#[test]
fn droidfuzz_covers_and_learns_on_every_device() {
    for spec in catalog::all_devices() {
        let id = spec.meta.id.clone();
        let mut engine = FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz(17));
        engine.run_iterations(250);
        assert!(engine.kernel_coverage() > 100, "{id}: coverage {}", engine.kernel_coverage());
        assert!(!engine.corpus().is_empty(), "{id}: empty corpus");
        assert!(!engine.desc_table().hal_ids().is_empty(), "{id}: no HAL vocabulary");
    }
}

#[test]
fn probing_never_breaks_a_device() {
    for spec in catalog::all_devices() {
        let id = spec.meta.id.clone();
        let engine = FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz(1));
        let report = engine.probe_report().expect("droidfuzz probes");
        assert!(report.interface_count() > 20, "{id}: thin probe");
        assert!(!engine.device().is_wedged(), "{id}: probing wedged the device");
    }
}

#[test]
fn virtual_clock_and_series_are_monotonic() {
    let mut engine = FuzzingEngine::new(catalog::device_b().boot(), FuzzerConfig::droidfuzz(3));
    engine.run_for_virtual_hours(0.5);
    let t1 = engine.virtual_time_us();
    let c1 = engine.kernel_coverage();
    engine.run_for_virtual_hours(0.5);
    assert!(engine.virtual_time_us() > t1);
    assert!(engine.kernel_coverage() >= c1, "coverage never shrinks");
    let points = engine.coverage_series().points();
    assert!(points.windows(2).all(|w| w[0].0 <= w[1].0), "time sorted");
    assert!(points.windows(2).all(|w| w[0].1 <= w[1].1), "coverage monotonic");
}

#[test]
fn droidfuzz_beats_syzkaller_on_coverage_given_equal_budget() {
    // Short single-seed sanity version of Fig. 4 (the bench binaries run
    // the full comparison with repeats).
    let mut df = FuzzingEngine::new(catalog::device_a2().boot(), FuzzerConfig::droidfuzz(8));
    df.run_for_virtual_hours(4.0);
    let mut sz = syz::engine(catalog::device_a2().boot(), 8);
    sz.run_for_virtual_hours(4.0);
    assert!(
        df.kernel_coverage() as f64 > 1.15 * sz.kernel_coverage() as f64,
        "DroidFuzz {} vs Syzkaller {}",
        df.kernel_coverage(),
        sz.kernel_coverage()
    );
}

#[test]
fn difuze_extraction_and_generation_work() {
    let mut device = catalog::device_a1().boot();
    let extracted = difuze::extract_interfaces(&mut device);
    assert!(extracted > 50, "extracted {extracted}");
    let mut engine = difuze::engine(catalog::device_a1().boot(), 4);
    engine.run_iterations(200);
    assert!(engine.kernel_coverage() > 20);
    assert!(engine.corpus().is_empty(), "difuze is generation-only");
}

#[test]
fn daemon_campaign_is_reproducible_per_seed() {
    let daemon = Daemon::new();
    let spec = catalog::device_e();
    let a = daemon.run_campaign(&spec, FuzzerConfig::droidfuzz, 0.05, 2);
    let b = daemon.run_campaign(&spec, FuzzerConfig::droidfuzz, 0.05, 2);
    assert_eq!(a.final_coverage, b.final_coverage, "same seeds → same results");
}

#[test]
fn reboot_on_bug_keeps_fuzzing_productive() {
    // Device E's querycap warning fires early and often; the engine must
    // reboot and keep making progress rather than wedging.
    let mut engine = FuzzingEngine::new(catalog::device_e().boot(), FuzzerConfig::droidfuzz(21));
    engine.run_iterations(4000);
    assert!(engine.device().boot_count() > 1, "expected at least one reboot");
    assert!(engine.kernel_coverage() > 300);
    assert!(!engine.crash_db().is_empty());
    let record = &engine.crash_db().records()[0];
    assert!(record.repro.is_some(), "first crash gets a reproducer");
}

#[test]
fn ioctl_only_restriction_reaches_less_surface() {
    let mut full = FuzzingEngine::new(catalog::device_a1().boot(), FuzzerConfig::droidfuzz(9));
    full.run_for_virtual_hours(2.0);
    let mut restricted =
        FuzzingEngine::new(catalog::device_a1().boot(), FuzzerConfig::droidfuzz_d(9));
    restricted.run_for_virtual_hours(2.0);
    assert!(
        restricted.kernel_coverage() < full.kernel_coverage(),
        "DF-D {} should trail DF {}",
        restricted.kernel_coverage(),
        full.kernel_coverage()
    );
}
