//! Fleet orchestration integration tests: determinism of sharded synced
//! campaigns, fault-injection kill/resume through the text snapshot, and
//! the daemon's single-slice special case riding the same path.

use droidfuzz_repro::droidfuzz::config::FuzzerConfig;
use droidfuzz_repro::droidfuzz::daemon::Daemon;
use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig, FleetResult, SNAPSHOT_HEADER};
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simdevice::faults::FaultProfile;
use proptest::prelude::*;

fn quick_config(sync: bool, kill_after_rounds: Option<usize>) -> FleetConfig {
    FleetConfig {
        shards: 2,
        hours: 0.15,
        sync_interval_hours: 0.05,
        sync,
        hub_capacity: 256,
        kill_after_rounds,
        flap_limit: 2,
        checkpoint_interval_rounds: 1,
        threads: 0,
    }
}

fn fingerprint(result: &FleetResult) -> (usize, u64, Vec<u64>, Vec<Vec<String>>, String) {
    (
        result.union_coverage,
        result.fault_totals.total(),
        result.shards.iter().map(|s| s.final_coverage as u64).collect(),
        result.shards.iter().map(|s| s.crash_titles.clone()).collect(),
        result.snapshot.clone(),
    )
}

/// A fixed `(seed, shard count)` must give identical final coverage,
/// crash titles, and snapshot text across two runs — worker threads only
/// touch their own shard and all hub traffic is sequenced in shard order,
/// so scheduling noise must not leak into results.
#[test]
fn synced_fleet_is_deterministic_for_a_fixed_seed() {
    let spec = catalog::device_a1();
    let first = Fleet::new(quick_config(true, None)).run(&spec, FuzzerConfig::droidfuzz);
    let second = Fleet::new(quick_config(true, None)).run(&spec, FuzzerConfig::droidfuzz);
    assert!(first.finished && second.finished);
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.executions, second.executions);
    // Distinct seeds do diverge (the determinism is not degeneracy).
    let other = Fleet::new(quick_config(true, None))
        .run(&spec, |lane| FuzzerConfig::droidfuzz(lane + 100));
    assert_ne!(first.snapshot, other.snapshot);
}

/// Killing a campaign mid-flight must leave a snapshot that resumes to a
/// completed campaign with all persistent state carried over.
#[test]
fn killed_fleet_resumes_from_its_snapshot() {
    let spec = catalog::device_e();
    let killed = Fleet::new(quick_config(true, Some(1))).run(&spec, FuzzerConfig::droidfuzz);
    assert!(!killed.finished);
    assert_eq!(killed.rounds_completed, 1);
    assert!(killed.snapshot.starts_with(SNAPSHOT_HEADER));

    let resumed = Fleet::new(quick_config(true, None))
        .resume(&spec, FuzzerConfig::droidfuzz, &killed.snapshot)
        .expect("snapshot must parse");
    assert!(resumed.finished);
    assert_eq!(resumed.rounds_completed, 3);
    assert!(
        resumed.union_coverage >= killed.union_coverage,
        "union coverage can only grow over a resume: {} -> {}",
        killed.union_coverage,
        resumed.union_coverage
    );
    // Crashes found before the kill survive in the fleet database even if
    // no shard rediscovers them after the resume.
    for crash in &killed.crashes {
        assert!(
            resumed.crashes.iter().any(|c| c.title == crash.title),
            "crash {:?} lost across the resume",
            crash.title
        );
    }
    // The hub corpus was handed back to the restarted shards.
    assert!(resumed.stats.shards.iter().any(|s| s.restored_seeds > 0));
}

/// A hostile-profile fleet — link drops, truncated replies, HAL deaths,
/// hangs, wedges, spontaneous reboots, vanishing devices — must run to
/// full length, replay bit-identically for the same seed, and lose no
/// crash state to the faults: everything the campaign found is in the
/// final snapshot.
#[test]
fn hostile_fleet_survives_and_replays_identically() {
    let spec = catalog::device_e();
    let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Hostile);
    let first = Fleet::new(quick_config(true, None)).run(&spec, mk);
    let second = Fleet::new(quick_config(true, None)).run(&spec, mk);
    assert!(first.finished, "the supervisor absorbs every injected fault");
    assert!(first.fault_totals.injected > 0, "hostile profile actually injects");
    assert!(first.union_coverage > 0, "coverage still accrues under hostility");
    assert_eq!(fingerprint(&first), fingerprint(&second));
    // Zero lost crash state: every fleet crash appears in the snapshot.
    for crash in &first.crashes {
        assert!(
            first.snapshot.contains(&crash.title.replace('\n', "\\n")),
            "crash {:?} missing from the snapshot",
            crash.title
        );
    }
}

/// A parallel run must be *bit-identical* to the sequential one: the
/// worker pool only changes which OS thread executes a shard's slice,
/// never the order hub state is touched in. `threads: 1` is the
/// sequential reference; every other worker count must reproduce its
/// snapshot, crash sets, and execution totals exactly.
#[test]
fn parallel_fleet_matches_sequential_bit_for_bit() {
    let spec = catalog::device_a1();
    let config = |threads| FleetConfig { shards: 4, threads, ..quick_config(true, None) };
    let sequential = Fleet::new(config(1)).run(&spec, FuzzerConfig::droidfuzz);
    assert!(sequential.finished);
    for threads in [2, 3, 4, 8] {
        let parallel = Fleet::new(config(threads)).run(&spec, FuzzerConfig::droidfuzz);
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "threads={threads} diverged from the sequential run"
        );
        assert_eq!(sequential.executions, parallel.executions, "threads={threads}");
        assert_eq!(
            sequential.snapshot, parallel.snapshot,
            "threads={threads} snapshot not byte-identical"
        );
    }
}

/// The absint gate keeps fixed-seed campaigns bit-identical across
/// worker counts: a DroidFuzz-S fleet (state models loaded, relation
/// priors seeded, static gate and depth-energy active) must reproduce
/// the sequential snapshot — including the absint counters in its
/// `# section lint` — at any thread count.
#[test]
fn droidfuzz_s_fleet_matches_sequential_across_thread_counts() {
    let spec = catalog::device_a1();
    let config = |threads| FleetConfig { shards: 3, threads, ..quick_config(true, None) };
    let sequential = Fleet::new(config(1)).run(&spec, FuzzerConfig::droidfuzz_s);
    assert!(sequential.finished);
    assert!(
        sequential.snapshot.contains("absint_rejected"),
        "snapshot must carry the absint gate counters"
    );
    for threads in [2, 4] {
        let parallel = Fleet::new(config(threads)).run(&spec, FuzzerConfig::droidfuzz_s);
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "threads={threads} diverged under the absint gate"
        );
        assert_eq!(sequential.executions, parallel.executions, "threads={threads}");
    }
}

/// Parallel determinism also holds under fault injection: restarts and
/// quarantines are orchestrator-side decisions made in shard order, so a
/// hostile campaign replays identically at any worker count.
#[test]
fn parallel_hostile_fleet_matches_sequential() {
    let spec = catalog::device_e();
    let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Hostile);
    let config = |threads| FleetConfig { shards: 3, threads, ..quick_config(true, None) };
    let sequential = Fleet::new(config(1)).run(&spec, mk);
    let parallel = Fleet::new(config(3)).run(&spec, mk);
    assert!(sequential.fault_totals.injected > 0, "hostile profile actually injects");
    assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
}

proptest! {
    /// Sequential/parallel equivalence over random seeds and worker
    /// counts: for any base seed and any `threads in 2..=8`, the final
    /// snapshot and crash sets match the `threads: 1` run byte for byte.
    #[test]
    fn any_worker_count_matches_sequential(seed in 0u64..4096, threads in 2u64..9) {
        let spec = catalog::device_a1();
        let config = |threads| FleetConfig {
            shards: 3,
            hours: 0.06,
            sync_interval_hours: 0.03,
            threads,
            ..quick_config(true, None)
        };
        let mk = move |lane: u64| FuzzerConfig::droidfuzz(lane.wrapping_add(seed));
        let sequential = Fleet::new(config(1)).run(&spec, mk);
        let parallel = Fleet::new(config(threads as usize)).run(&spec, mk);
        prop_assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
        prop_assert_eq!(sequential.executions, parallel.executions);
    }
}

/// The daemon's repeated-campaign entry point is the unsynced single-slice
/// special case of the fleet path and keeps its aggregate shape.
#[test]
fn daemon_campaign_rides_the_fleet_path() {
    let result =
        Daemon::new().run_campaign(&catalog::device_e(), FuzzerConfig::droidfuzz, 0.05, 2);
    assert_eq!(result.device_id, "E");
    assert_eq!(result.fuzzer, "DroidFuzz");
    assert_eq!(result.final_coverage.len(), 2);
    assert!(result.executions > 0);
    assert!(!result.mean_series.is_empty());
    assert_eq!(result.fault_totals.total(), 0, "reliable by default");
}

/// The daemon's thread cap is plumbed through to the fleet and keeps the
/// campaign results bit-identical.
#[test]
fn daemon_thread_cap_does_not_change_results() {
    let spec = catalog::device_e();
    let wide = Daemon::new().run_campaign(&spec, FuzzerConfig::droidfuzz, 0.05, 3);
    let narrow =
        Daemon::new().with_threads(1).run_campaign(&spec, FuzzerConfig::droidfuzz, 0.05, 3);
    assert_eq!(wide.final_coverage, narrow.final_coverage);
    assert_eq!(wide.executions, narrow.executions);
    assert_eq!(
        wide.crashes.iter().map(|c| &c.title).collect::<Vec<_>>(),
        narrow.crashes.iter().map(|c| &c.title).collect::<Vec<_>>()
    );
}
