//! Fleet orchestration integration tests: determinism of sharded synced
//! campaigns, fault-injection kill/resume through the text snapshot, and
//! the daemon's single-slice special case riding the same path.

use droidfuzz_repro::droidfuzz::config::FuzzerConfig;
use droidfuzz_repro::droidfuzz::daemon::Daemon;
use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig, FleetResult, SNAPSHOT_HEADER};
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simdevice::faults::FaultProfile;

fn quick_config(sync: bool, kill_after_rounds: Option<usize>) -> FleetConfig {
    FleetConfig {
        shards: 2,
        hours: 0.15,
        sync_interval_hours: 0.05,
        sync,
        hub_capacity: 256,
        kill_after_rounds,
        flap_limit: 2,
        checkpoint_interval_rounds: 1,
    }
}

fn fingerprint(result: &FleetResult) -> (usize, u64, Vec<u64>, Vec<Vec<String>>, String) {
    (
        result.union_coverage,
        result.fault_totals.total(),
        result.shards.iter().map(|s| s.final_coverage as u64).collect(),
        result.shards.iter().map(|s| s.crash_titles.clone()).collect(),
        result.snapshot.clone(),
    )
}

/// A fixed `(seed, shard count)` must give identical final coverage,
/// crash titles, and snapshot text across two runs — worker threads only
/// touch their own shard and all hub traffic is sequenced in shard order,
/// so scheduling noise must not leak into results.
#[test]
fn synced_fleet_is_deterministic_for_a_fixed_seed() {
    let spec = catalog::device_a1();
    let first = Fleet::new(quick_config(true, None)).run(&spec, FuzzerConfig::droidfuzz);
    let second = Fleet::new(quick_config(true, None)).run(&spec, FuzzerConfig::droidfuzz);
    assert!(first.finished && second.finished);
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.executions, second.executions);
    // Distinct seeds do diverge (the determinism is not degeneracy).
    let other = Fleet::new(quick_config(true, None))
        .run(&spec, |lane| FuzzerConfig::droidfuzz(lane + 100));
    assert_ne!(first.snapshot, other.snapshot);
}

/// Killing a campaign mid-flight must leave a snapshot that resumes to a
/// completed campaign with all persistent state carried over.
#[test]
fn killed_fleet_resumes_from_its_snapshot() {
    let spec = catalog::device_e();
    let killed = Fleet::new(quick_config(true, Some(1))).run(&spec, FuzzerConfig::droidfuzz);
    assert!(!killed.finished);
    assert_eq!(killed.rounds_completed, 1);
    assert!(killed.snapshot.starts_with(SNAPSHOT_HEADER));

    let resumed = Fleet::new(quick_config(true, None))
        .resume(&spec, FuzzerConfig::droidfuzz, &killed.snapshot)
        .expect("snapshot must parse");
    assert!(resumed.finished);
    assert_eq!(resumed.rounds_completed, 3);
    assert!(
        resumed.union_coverage >= killed.union_coverage,
        "union coverage can only grow over a resume: {} -> {}",
        killed.union_coverage,
        resumed.union_coverage
    );
    // Crashes found before the kill survive in the fleet database even if
    // no shard rediscovers them after the resume.
    for crash in &killed.crashes {
        assert!(
            resumed.crashes.iter().any(|c| c.title == crash.title),
            "crash {:?} lost across the resume",
            crash.title
        );
    }
    // The hub corpus was handed back to the restarted shards.
    assert!(resumed.stats.shards.iter().any(|s| s.restored_seeds > 0));
}

/// A hostile-profile fleet — link drops, truncated replies, HAL deaths,
/// hangs, wedges, spontaneous reboots, vanishing devices — must run to
/// full length, replay bit-identically for the same seed, and lose no
/// crash state to the faults: everything the campaign found is in the
/// final snapshot.
#[test]
fn hostile_fleet_survives_and_replays_identically() {
    let spec = catalog::device_e();
    let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Hostile);
    let first = Fleet::new(quick_config(true, None)).run(&spec, mk);
    let second = Fleet::new(quick_config(true, None)).run(&spec, mk);
    assert!(first.finished, "the supervisor absorbs every injected fault");
    assert!(first.fault_totals.injected > 0, "hostile profile actually injects");
    assert!(first.union_coverage > 0, "coverage still accrues under hostility");
    assert_eq!(fingerprint(&first), fingerprint(&second));
    // Zero lost crash state: every fleet crash appears in the snapshot.
    for crash in &first.crashes {
        assert!(
            first.snapshot.contains(&crash.title.replace('\n', "\\n")),
            "crash {:?} missing from the snapshot",
            crash.title
        );
    }
}

/// The daemon's repeated-campaign entry point is the unsynced single-slice
/// special case of the fleet path and keeps its aggregate shape.
#[test]
fn daemon_campaign_rides_the_fleet_path() {
    let result =
        Daemon::new().run_campaign(&catalog::device_e(), FuzzerConfig::droidfuzz, 0.05, 2);
    assert_eq!(result.device_id, "E");
    assert_eq!(result.fuzzer, "DroidFuzz");
    assert_eq!(result.final_coverage.len(), 2);
    assert!(result.executions > 0);
    assert!(!result.mean_series.is_empty());
    assert_eq!(result.fault_totals.total(), 0, "reliable by default");
}
