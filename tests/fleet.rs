//! Fleet orchestration integration tests: determinism of sharded synced
//! campaigns, fault-injection kill/resume through the text snapshot, and
//! the daemon's single-slice special case riding the same path.

use droidfuzz_repro::droidfuzz::config::FuzzerConfig;
use droidfuzz_repro::droidfuzz::daemon::Daemon;
use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig, FleetResult, SNAPSHOT_HEADER};
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simdevice::faults::{FaultProfile, FaultRates};
use proptest::prelude::*;

fn quick_config(sync: bool, kill_after_rounds: Option<usize>) -> FleetConfig {
    FleetConfig {
        shards: 2,
        hours: 0.15,
        sync_interval_hours: 0.05,
        sync,
        hub_capacity: 256,
        kill_after_rounds,
        flap_limit: 2,
        checkpoint_interval_rounds: 1,
        threads: 0,
    }
}

fn fingerprint(result: &FleetResult) -> (usize, u64, Vec<u64>, Vec<Vec<String>>, String) {
    (
        result.union_coverage,
        result.fault_totals.total(),
        result.shards.iter().map(|s| s.final_coverage as u64).collect(),
        result.shards.iter().map(|s| s.crash_titles.clone()).collect(),
        result.snapshot.clone(),
    )
}

/// A fixed `(seed, shard count)` must give identical final coverage,
/// crash titles, and snapshot text across two runs — worker threads only
/// touch their own shard and all hub traffic is sequenced in shard order,
/// so scheduling noise must not leak into results.
#[test]
fn synced_fleet_is_deterministic_for_a_fixed_seed() {
    let spec = catalog::device_a1();
    let first = Fleet::new(quick_config(true, None)).run(&spec, FuzzerConfig::droidfuzz);
    let second = Fleet::new(quick_config(true, None)).run(&spec, FuzzerConfig::droidfuzz);
    assert!(first.finished && second.finished);
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.executions, second.executions);
    // Distinct seeds do diverge (the determinism is not degeneracy).
    let other = Fleet::new(quick_config(true, None))
        .run(&spec, |lane| FuzzerConfig::droidfuzz(lane + 100));
    assert_ne!(first.snapshot, other.snapshot);
}

/// Killing a campaign mid-flight must leave a snapshot that resumes to a
/// completed campaign with all persistent state carried over.
#[test]
fn killed_fleet_resumes_from_its_snapshot() {
    let spec = catalog::device_e();
    let killed = Fleet::new(quick_config(true, Some(1))).run(&spec, FuzzerConfig::droidfuzz);
    assert!(!killed.finished);
    assert_eq!(killed.rounds_completed, 1);
    assert!(killed.snapshot.starts_with(SNAPSHOT_HEADER));

    let resumed = Fleet::new(quick_config(true, None))
        .resume(&spec, FuzzerConfig::droidfuzz, &killed.snapshot)
        .expect("snapshot must parse");
    assert!(resumed.finished);
    assert_eq!(resumed.rounds_completed, 3);
    assert!(
        resumed.union_coverage >= killed.union_coverage,
        "union coverage can only grow over a resume: {} -> {}",
        killed.union_coverage,
        resumed.union_coverage
    );
    // Crashes found before the kill survive in the fleet database even if
    // no shard rediscovers them after the resume.
    for crash in &killed.crashes {
        assert!(
            resumed.crashes.iter().any(|c| c.title == crash.title),
            "crash {:?} lost across the resume",
            crash.title
        );
    }
    // The hub corpus was handed back to the restarted shards.
    assert!(resumed.stats.shards.iter().any(|s| s.restored_seeds > 0));
}

/// A hostile-profile fleet — link drops, truncated replies, HAL deaths,
/// hangs, wedges, spontaneous reboots, vanishing devices — must run to
/// full length, replay bit-identically for the same seed, and lose no
/// crash state to the faults: everything the campaign found is in the
/// final snapshot.
#[test]
fn hostile_fleet_survives_and_replays_identically() {
    let spec = catalog::device_e();
    let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Hostile);
    let first = Fleet::new(quick_config(true, None)).run(&spec, mk);
    let second = Fleet::new(quick_config(true, None)).run(&spec, mk);
    assert!(first.finished, "the supervisor absorbs every injected fault");
    assert!(first.fault_totals.injected > 0, "hostile profile actually injects");
    assert!(first.union_coverage > 0, "coverage still accrues under hostility");
    assert_eq!(fingerprint(&first), fingerprint(&second));
    // Zero lost crash state: every fleet crash appears in the snapshot.
    for crash in &first.crashes {
        assert!(
            first.snapshot.contains(&crash.title.replace('\n', "\\n")),
            "crash {:?} missing from the snapshot",
            crash.title
        );
    }
}

/// A parallel run must be *bit-identical* to the sequential one: the
/// worker pool only changes which OS thread executes a shard's slice,
/// never the order hub state is touched in. `threads: 1` is the
/// sequential reference; every other worker count must reproduce its
/// snapshot, crash sets, and execution totals exactly.
#[test]
fn parallel_fleet_matches_sequential_bit_for_bit() {
    let spec = catalog::device_a1();
    let config = |threads| FleetConfig { shards: 4, threads, ..quick_config(true, None) };
    let sequential = Fleet::new(config(1)).run(&spec, FuzzerConfig::droidfuzz);
    assert!(sequential.finished);
    for threads in [2, 3, 4, 8] {
        let parallel = Fleet::new(config(threads)).run(&spec, FuzzerConfig::droidfuzz);
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "threads={threads} diverged from the sequential run"
        );
        assert_eq!(sequential.executions, parallel.executions, "threads={threads}");
        assert_eq!(
            sequential.snapshot, parallel.snapshot,
            "threads={threads} snapshot not byte-identical"
        );
    }
}

/// The absint gate keeps fixed-seed campaigns bit-identical across
/// worker counts: a DroidFuzz-S fleet (state models loaded, relation
/// priors seeded, static gate and depth-energy active) must reproduce
/// the sequential snapshot — including the absint counters in its
/// `# section lint` — at any thread count.
#[test]
fn droidfuzz_s_fleet_matches_sequential_across_thread_counts() {
    let spec = catalog::device_a1();
    let config = |threads| FleetConfig { shards: 3, threads, ..quick_config(true, None) };
    let sequential = Fleet::new(config(1)).run(&spec, FuzzerConfig::droidfuzz_s);
    assert!(sequential.finished);
    assert!(
        sequential.snapshot.contains("absint_rejected"),
        "snapshot must carry the absint gate counters"
    );
    for threads in [2, 4] {
        let parallel = Fleet::new(config(threads)).run(&spec, FuzzerConfig::droidfuzz_s);
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "threads={threads} diverged under the absint gate"
        );
        assert_eq!(sequential.executions, parallel.executions, "threads={threads}");
    }
}

/// Parallel determinism also holds under fault injection: restarts and
/// quarantines are orchestrator-side decisions made in shard order, so a
/// hostile campaign replays identically at any worker count.
#[test]
fn parallel_hostile_fleet_matches_sequential() {
    let spec = catalog::device_e();
    let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Hostile);
    let config = |threads| FleetConfig { shards: 3, threads, ..quick_config(true, None) };
    let sequential = Fleet::new(config(1)).run(&spec, mk);
    let parallel = Fleet::new(config(3)).run(&spec, mk);
    assert!(sequential.fault_totals.injected > 0, "hostile profile actually injects");
    assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
}

/// The broker batch size is a pure host-side amortization: batch
/// boundaries draw no RNG and charge no virtual time, so fixed-seed
/// campaigns must produce byte-equal snapshots at every `exec_batch` ×
/// `threads` combination. `exec_batch: 1` is the per-program reference.
#[test]
fn exec_batch_size_is_invisible_to_campaign_results() {
    let spec = catalog::device_a1();
    let config = |threads| FleetConfig { shards: 3, threads, ..quick_config(true, None) };
    let mk = |batch: usize| {
        move |lane: u64| FuzzerConfig::droidfuzz(lane).with_exec_batch(batch)
    };
    let reference = Fleet::new(config(1)).run(&spec, mk(1));
    assert!(reference.finished);
    for batch in [4, 32] {
        for threads in [1, 4] {
            let batched = Fleet::new(config(threads)).run(&spec, mk(batch));
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&batched),
                "batch={batch} threads={threads} diverged from the per-program path"
            );
            assert_eq!(reference.executions, batched.executions, "batch={batch}");
            assert_eq!(
                reference.snapshot, batched.snapshot,
                "batch={batch} threads={threads} snapshot not byte-identical"
            );
        }
    }
}

/// Faults landing mid-batch — HAL deaths, spontaneous reboots, wedges,
/// hangs, including on the last program of a slice — must salvage crash
/// reports and quarantine exactly like the per-program path: identical
/// fault taxonomy totals, identical crash sets, identical snapshots.
#[test]
fn mid_batch_faults_match_per_program_taxonomy() {
    let spec = catalog::device_e();
    // A mix dense enough that every batch of 32 sees several faults and
    // slices regularly end on a faulted program.
    let rates = FaultRates {
        hal_death: 0.04,
        reboot: 0.04,
        wedge: 0.03,
        hang: 0.03,
        truncated_reply: 0.03,
        link_drop: 0.03,
        ..FaultRates::for_profile(FaultProfile::Reliable)
    };
    let mk = |batch: usize| {
        move |lane: u64| {
            FuzzerConfig::droidfuzz(lane).with_fault_rates(rates).with_exec_batch(batch)
        }
    };
    let config = |threads| FleetConfig { shards: 2, threads, ..quick_config(true, None) };
    let reference = Fleet::new(config(1)).run(&spec, mk(1));
    assert!(reference.fault_totals.injected > 0, "the forced mix actually injects");
    for batch in [4, 32] {
        let batched = Fleet::new(config(1)).run(&spec, mk(batch));
        assert_eq!(
            reference.fault_totals, batched.fault_totals,
            "batch={batch}: fault classification must be batch-size-invariant"
        );
        assert_eq!(fingerprint(&reference), fingerprint(&batched), "batch={batch}");
    }
    // And the full hostile profile (vanishing devices, re-provisioning,
    // shard restarts) stays equal across batch sizes and threads too.
    let hostile = |batch: usize| {
        move |lane: u64| {
            FuzzerConfig::droidfuzz(lane)
                .with_fault_profile(FaultProfile::Hostile)
                .with_exec_batch(batch)
        }
    };
    let hostile_ref = Fleet::new(config(1)).run(&spec, hostile(1));
    let hostile_batched = Fleet::new(config(2)).run(&spec, hostile(32));
    assert_eq!(fingerprint(&hostile_ref), fingerprint(&hostile_batched));
}

proptest! {
    /// Sequential/parallel equivalence over random seeds and worker
    /// counts: for any base seed and any `threads in 2..=8`, the final
    /// snapshot and crash sets match the `threads: 1` run byte for byte.
    #[test]
    fn any_worker_count_matches_sequential(seed in 0u64..4096, threads in 2u64..9) {
        let spec = catalog::device_a1();
        let config = |threads| FleetConfig {
            shards: 3,
            hours: 0.06,
            sync_interval_hours: 0.03,
            threads,
            ..quick_config(true, None)
        };
        let mk = move |lane: u64| FuzzerConfig::droidfuzz(lane.wrapping_add(seed));
        let sequential = Fleet::new(config(1)).run(&spec, mk);
        let parallel = Fleet::new(config(threads as usize)).run(&spec, mk);
        prop_assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
        prop_assert_eq!(sequential.executions, parallel.executions);
    }

    /// Batch-size equivalence over random seeds, batch sizes, worker
    /// counts, and fault pressure: for any `exec_batch in 2..=32` the
    /// campaign matches the `exec_batch: 1` per-program reference byte
    /// for byte — faulted or not, parallel or not.
    #[test]
    fn any_batch_size_matches_per_program(
        seed in 0u64..4096,
        batch in 2usize..33,
        threads in 1usize..5,
        flaky in any::<bool>(),
    ) {
        let spec = catalog::device_a1();
        let config = |threads| FleetConfig {
            shards: 3,
            hours: 0.06,
            sync_interval_hours: 0.03,
            threads,
            ..quick_config(true, None)
        };
        let mk = move |b: usize| {
            move |lane: u64| {
                let cfg = FuzzerConfig::droidfuzz(lane.wrapping_add(seed)).with_exec_batch(b);
                if flaky { cfg.with_fault_profile(FaultProfile::Flaky) } else { cfg }
            }
        };
        let per_program = Fleet::new(config(1)).run(&spec, mk(1));
        let batched = Fleet::new(config(threads)).run(&spec, mk(batch));
        prop_assert_eq!(fingerprint(&per_program), fingerprint(&batched));
        prop_assert_eq!(per_program.executions, batched.executions);
    }
}

/// The daemon's repeated-campaign entry point is the unsynced single-slice
/// special case of the fleet path and keeps its aggregate shape.
#[test]
fn daemon_campaign_rides_the_fleet_path() {
    let result =
        Daemon::new().run_campaign(&catalog::device_e(), FuzzerConfig::droidfuzz, 0.05, 2);
    assert_eq!(result.device_id, "E");
    assert_eq!(result.fuzzer, "DroidFuzz");
    assert_eq!(result.final_coverage.len(), 2);
    assert!(result.executions > 0);
    assert!(!result.mean_series.is_empty());
    assert_eq!(result.fault_totals.total(), 0, "reliable by default");
}

/// The daemon's thread cap is plumbed through to the fleet and keeps the
/// campaign results bit-identical.
#[test]
fn daemon_thread_cap_does_not_change_results() {
    let spec = catalog::device_e();
    let wide = Daemon::new().run_campaign(&spec, FuzzerConfig::droidfuzz, 0.05, 3);
    let narrow =
        Daemon::new().with_threads(1).run_campaign(&spec, FuzzerConfig::droidfuzz, 0.05, 3);
    assert_eq!(wide.final_coverage, narrow.final_coverage);
    assert_eq!(wide.executions, narrow.executions);
    assert_eq!(
        wide.crashes.iter().map(|c| &c.title).collect::<Vec<_>>(),
        narrow.crashes.iter().map(|c| &c.title).collect::<Vec<_>>()
    );
}
