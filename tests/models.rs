//! Per-device regression tests for the static interface models: every
//! Table-I catalog device must boot with valid `DriverApi`
//! self-descriptions (no duplicate ioctl request codes, no empty
//! `Choice`/`Flags` word shapes, well-formed state models — the same
//! checks debug builds run at mount time) and a [`ModelSet`] whose audit
//! is completely clean (no unreachable states, dead transitions, or
//! nondeterministic guard overlaps).
//!
//! One test per device so a regression names the exact firmware spec
//! that broke.

use droidfuzz_repro::droidfuzz_analysis::{ModelSet, Severity};
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simdevice::FirmwareSpec;
use droidfuzz_repro::simkernel::driver::validate_api;

fn assert_device_models_clean(spec: FirmwareSpec) {
    let mut device = spec.boot();
    let kernel = device.kernel();
    for node in kernel.device_nodes() {
        let api = kernel.device_api(&node).expect("listed node has an api");
        let problems = validate_api(&node, &api);
        assert!(problems.is_empty(), "{node}: invalid DriverApi: {problems:?}");
    }
    let models = ModelSet::for_kernel(kernel);
    assert!(!models.is_empty(), "every catalog device carries state models");
    let report = models.audit();
    assert_eq!(
        report.error_count(),
        0,
        "model audit errors: {:?}",
        report.diagnostics
    );
    assert_eq!(
        report.count(Severity::Warning),
        0,
        "model audit warnings: {:?}",
        report.diagnostics
    );
}

#[test]
fn device_a1_models_audit_clean() {
    assert_device_models_clean(catalog::device_a1());
}

#[test]
fn device_a2_models_audit_clean() {
    assert_device_models_clean(catalog::device_a2());
}

#[test]
fn device_b_models_audit_clean() {
    assert_device_models_clean(catalog::device_b());
}

#[test]
fn device_c1_models_audit_clean() {
    assert_device_models_clean(catalog::device_c1());
}

#[test]
fn device_c2_models_audit_clean() {
    assert_device_models_clean(catalog::device_c2());
}

#[test]
fn device_d_models_audit_clean() {
    assert_device_models_clean(catalog::device_d());
}

#[test]
fn device_e_models_audit_clean() {
    assert_device_models_clean(catalog::device_e());
}
