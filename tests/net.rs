//! Distributed fleet integration tests: wire-codec round trips, the
//! tentpole bit-identity guarantee (a fixed-seed distributed campaign
//! over loopback equals the local `--threads` run), reliable-link
//! reproducibility including net counters, hostile-link reconnects with
//! zero lost corpus/crash state, and distributed kill/resume.

use droidfuzz_repro::droidfuzz::config::FuzzerConfig;
use droidfuzz_repro::droidfuzz::crashes::CrashRecord;
use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig, FleetSnapshot, SNAPSHOT_HEADER};
use droidfuzz_repro::droidfuzz::net::{
    decode_frame, decode_message, encode_frame, encode_message, CampaignSpec, HubResult,
    HubServer, LoopbackConnector, Message, NetCounters, NetError, ServeConfig, WireShardStats,
    WireUpdate, WorkerConfig, WorkerResult, WorkerRuntime,
};
use droidfuzz_repro::simdevice::catalog;
use droidfuzz_repro::simdevice::faults::{FaultProfile, LinkFaultRates};
use droidfuzz_repro::simkernel::report::{BugKind, Component};
use proptest::prelude::*;
use std::thread;

/// Same campaign shape as `tests/fleet.rs` — 3 sync rounds of 0.05
/// virtual hours each, checkpoint every round.
fn quick_fleet(shards: usize, kill_after_rounds: Option<usize>) -> FleetConfig {
    FleetConfig {
        shards,
        hours: 0.15,
        sync_interval_hours: 0.05,
        sync: true,
        hub_capacity: 256,
        kill_after_rounds,
        flap_limit: 2,
        checkpoint_interval_rounds: 1,
        threads: 0,
    }
}

/// Hub config matching the local `FuzzerConfig::droidfuzz` recipe:
/// `engine_config(s) = variant_config("droidfuzz", 0 + s)`.
fn serve_config(fleet: FleetConfig) -> ServeConfig {
    ServeConfig { fleet, device: "A1".into(), variant: "droidfuzz".into(), seed: 0 }
}

/// Drops the `net <counter> <value>` lines from a snapshot. A local
/// run's snapshot carries its resume baseline (zeros on a fresh run)
/// while a hub's carries live wire totals, so cross-mode comparisons go
/// modulo the net section; everything else must match byte for byte.
fn strip_net(snapshot: &str) -> String {
    snapshot
        .lines()
        .filter(|line| !line.starts_with("net "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Boots a loopback hub plus one worker per entry in `splits` (each
/// entry is that worker's local shard count) and runs the campaign to
/// completion on plain threads.
fn run_distributed(
    fleet: FleetConfig,
    splits: &[usize],
    rates: LinkFaultRates,
    seed: u64,
    resume: Option<FleetSnapshot>,
) -> (HubResult, Vec<WorkerResult>) {
    let (connector, listener) = LoopbackConnector::with_rates(rates, seed);
    let cfg = serve_config(fleet);
    let hub = thread::spawn(move || HubServer::new(cfg).serve(listener, None, resume.as_ref()));
    let workers: Vec<_> = splits
        .iter()
        .enumerate()
        .map(|(i, &shards)| {
            let conn =
                connector.sibling_with_rates(rates, seed.wrapping_add(1000 * (i as u64 + 1)));
            let cfg = WorkerConfig {
                shards,
                threads: 0,
                name: format!("w{i}"),
                max_link_retries: 50,
            };
            thread::spawn(move || WorkerRuntime::new(cfg).run(Box::new(conn)))
        })
        .collect();
    drop(connector);
    let worker_results: Vec<WorkerResult> = workers
        .into_iter()
        .map(|h| h.join().expect("worker thread").expect("worker completes"))
        .collect();
    let hub_result = hub.join().expect("hub thread").expect("hub completes");
    (hub_result, worker_results)
}

fn reliable() -> LinkFaultRates {
    LinkFaultRates::for_profile(FaultProfile::Reliable)
}

fn crash_titles(crashes: &[CrashRecord]) -> Vec<String> {
    crashes.iter().map(|c| c.title.clone()).collect()
}

// ---------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------

/// Every message variant survives encode → decode unchanged, including
/// embedded newlines, escapes, and optional fields in both states.
#[test]
fn every_message_variant_round_trips_through_the_codec() {
    let crash = CrashRecord {
        title: "KASAN: slab-use-after-free in gpu_job_submit".into(),
        kind: BugKind::KasanUseAfterFree,
        component: Component::KernelDriver,
        count: 3,
        first_seen_us: 123_456,
        repro: Some("open dev=\"gpu\"\nioctl cmd=0x1f\n".into()),
    };
    let update = WireUpdate {
        shard: 2,
        corpus_delta: "# seed 1\nopen dev=\"npu\"\n\nclose fd=3\n".into(),
        new_blocks: vec![1, 99, 1 << 40],
        relations_text: Some("edge open ioctl 0.5\n".into()),
        crashes: vec![crash],
    };
    let stats = WireShardStats {
        shard: 1,
        heartbeats: 3,
        executions: 1017,
        clock_us: 180_000_000,
        corpus_len: 41,
        coverage: 912,
        crashes: 2,
        restored_seeds: 7,
        restarts: 1,
        quarantines: 0,
        pulled: 5,
        faults: Default::default(),
        lint: Default::default(),
    };
    let campaign = CampaignSpec {
        device: "A1".into(),
        variant: "droidfuzz".into(),
        seed: 0,
        hours: 0.15,
        sync_interval_hours: 0.05,
        sync: true,
        shards: 3,
        hub_capacity: 256,
        flap_limit: 2,
        start_round: 1,
        clock_us: 180_000_000,
    };
    let net = NetCounters { frames_sent: 12, reconnects: 1, ..Default::default() };
    let messages = vec![
        Message::Hello { version: 1, worker: "w0".into(), shards: 2, claim: None },
        Message::Hello { version: 1, worker: "w \"q\"".into(), shards: 2, claim: Some(4) },
        Message::HelloAck { version: 1, base_shard: 1, campaign },
        Message::PushUpdate { round: 0, update },
        Message::PushAck { round: 0, shard: 2, duplicate: true },
        Message::PullRequest { barrier: 1, shard: 0, cursor: 9, full: false },
        Message::PullResponse {
            barrier: 1,
            shard: 0,
            corpus_text: "# seed 2\nmmap len=4096\n".into(),
            cursor: 12,
            delivered: 3,
            relations_text: None,
        },
        Message::RoundDone { round: 2, stats: vec![stats], net },
        Message::RoundAck { round: 2, continue_campaign: false },
        Message::Heartbeat { round: 1 },
        Message::Bye { reason: "campaign complete".into() },
    ];
    for msg in messages {
        let text = encode_message(&msg);
        let back = decode_message(&text).unwrap_or_else(|e| panic!("decode {text:?}: {e}"));
        assert_eq!(back, msg);
    }
}

proptest! {
    /// Frames round-trip for arbitrary binary payloads and sequence
    /// numbers, and the decoder reports exactly the bytes it consumed.
    #[test]
    fn frames_round_trip(seq in any::<u64>(),
                         payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let frame = encode_frame(seq, &payload);
        let (got_seq, got_payload, used) = decode_frame(&frame).expect("well-formed frame");
        assert_eq!(got_seq, seq);
        assert_eq!(got_payload, payload);
        assert_eq!(used, frame.len());
    }

    /// A single flipped byte anywhere in a frame is either caught by a
    /// typed decode error or decodes to something observably different —
    /// never silently accepted as the original.
    #[test]
    fn corrupted_frames_never_pass_as_the_original(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        flip in any::<usize>(),
    ) {
        let mut frame = encode_frame(7, &payload);
        let idx = flip % frame.len();
        frame[idx] ^= 0x01;
        match decode_frame(&frame) {
            Ok((seq, body, _)) => assert!(
                seq != 7 || body != payload,
                "flipped byte {idx} decoded as the original frame"
            ),
            Err(NetError::Crc { .. })
            | Err(NetError::Garbage(_))
            | Err(NetError::Truncated(_))
            | Err(NetError::Oversized(_)) => {}
            Err(e) => panic!("unexpected error class for a flipped byte: {e}"),
        }
    }

    /// Wire updates with arbitrary printable-plus-newline corpus text,
    /// coverage blocks, and optional relations survive a message-level
    /// round trip.
    #[test]
    fn wire_updates_round_trip(
        shard in 0usize..8,
        head in "[ -~]{0,48}",
        lines in prop::collection::vec("[ -~]{0,24}", 0..4),
        blocks in prop::collection::vec(any::<u64>(), 0..16),
        round in 0usize..64,
        with_relations in any::<bool>(),
    ) {
        let mut corpus_delta = head;
        for line in &lines {
            corpus_delta.push('\n');
            corpus_delta.push_str(line);
        }
        let relations_text =
            with_relations.then(|| format!("graph v1\n{}\n", corpus_delta.clone()));
        let update = WireUpdate {
            shard,
            corpus_delta,
            new_blocks: blocks,
            relations_text,
            crashes: Vec::new(),
        };
        let msg = Message::PushUpdate { round, update };
        let back = decode_message(&encode_message(&msg)).expect("decodes");
        assert_eq!(back, msg);
    }
}

// ---------------------------------------------------------------------
// Distributed vs local bit-identity (the tentpole guarantee)
// ---------------------------------------------------------------------

/// A fixed-seed distributed campaign over loopback — one worker or the
/// same shards split across two workers — must reproduce the local
/// `--threads` run byte for byte modulo the snapshot's net section,
/// with identical coverage, executions, and crash set.
#[test]
fn loopback_distributed_campaign_matches_local_run_bit_for_bit() {
    let shards = 3;
    let spec = catalog::device_a1();
    let local = Fleet::new(quick_fleet(shards, None)).run(&spec, FuzzerConfig::droidfuzz);
    assert!(local.finished);

    let (one_worker, workers_a) =
        run_distributed(quick_fleet(shards, None), &[3], reliable(), 11, None);
    let (two_workers, workers_b) =
        run_distributed(quick_fleet(shards, None), &[2, 1], reliable(), 22, None);

    for (label, hub, workers) in
        [("1x3", &one_worker, &workers_a), ("2+1", &two_workers, &workers_b)]
    {
        assert!(hub.finished, "{label}: hub must finish");
        assert!(workers.iter().all(|w| w.finished), "{label}: workers must finish");
        assert!(hub.snapshot.starts_with(SNAPSHOT_HEADER), "{label}: snapshot header");
        assert_eq!(
            strip_net(&hub.snapshot),
            strip_net(&local.snapshot),
            "{label}: distributed snapshot diverged from the local run"
        );
        assert_eq!(hub.union_coverage, local.union_coverage, "{label}: coverage");
        assert_eq!(hub.executions, local.executions, "{label}: executions");
        assert_eq!(hub.rounds_completed, local.rounds_completed, "{label}: rounds");
        assert_eq!(hub.clock_us, local.clock_us, "{label}: clock");
        assert_eq!(
            crash_titles(&hub.crashes),
            crash_titles(&local.crashes),
            "{label}: crash set"
        );
        assert_eq!(hub.stats.union_coverage, local.stats.union_coverage, "{label}: stats");
    }
    assert_eq!(one_worker.workers, 1);
    assert_eq!(two_workers.workers, 2);
}

/// On a reliable link no message is timer-driven, so two identical
/// single-worker distributed runs agree on *everything* — including the
/// snapshot's net section and the wire counters themselves.
#[test]
fn reliable_link_distributed_runs_reproduce_net_counters_bit_for_bit() {
    let first = run_distributed(quick_fleet(2, None), &[2], reliable(), 7, None);
    let second = run_distributed(quick_fleet(2, None), &[2], reliable(), 7, None);
    assert!(first.0.finished && second.0.finished);
    assert_eq!(first.0.snapshot, second.0.snapshot, "full snapshot incl. net section");
    assert_eq!(first.0.net_totals, second.0.net_totals);
    assert_eq!(first.1[0].net_totals, second.1[0].net_totals);
    assert!(first.0.net_totals.frames_sent > 0, "hub must have sent frames");
    assert_eq!(first.0.net_totals.sessions, 1);
    assert_eq!(first.0.net_totals.reconnects, 0, "reliable link never reconnects");
}

// ---------------------------------------------------------------------
// Hostile links
// ---------------------------------------------------------------------

/// A link that tears frames, flips bytes, and drops the connection
/// mid-campaign forces reconnects — and the final hub state must still
/// equal the local run's: zero lost corpus, coverage, or crash state.
#[test]
fn hostile_link_reconnects_without_losing_corpus_or_crash_state() {
    let rates = LinkFaultRates {
        truncate: 0.02,
        corrupt: 0.02,
        duplicate: 0.02,
        disconnect: 0.04,
        stall: 0.05,
    };
    let spec = catalog::device_a1();
    let local = Fleet::new(quick_fleet(2, None)).run(&spec, FuzzerConfig::droidfuzz);
    let (hub, workers) = run_distributed(quick_fleet(2, None), &[2], rates, 31, None);

    assert!(hub.finished && workers[0].finished);
    assert_eq!(
        strip_net(&hub.snapshot),
        strip_net(&local.snapshot),
        "hostile link must not change campaign state"
    );
    assert_eq!(hub.union_coverage, local.union_coverage);
    assert_eq!(hub.executions, local.executions);
    assert_eq!(crash_titles(&hub.crashes), crash_titles(&local.crashes));
    let net = hub.net_totals;
    assert!(net.reconnects >= 1, "fault rates should force at least one reconnect: {net:?}");
    assert!(net.sessions > 1, "each reconnect opens a fresh session: {net:?}");
    assert!(
        net.malformed_frames + net.truncated_frames + net.dup_frames > 0,
        "fault injection should surface in the typed counters: {net:?}"
    );
}

// ---------------------------------------------------------------------
// Distributed kill/resume
// ---------------------------------------------------------------------

/// A hub killed after round 1 leaves a snapshot that a fresh hub (and a
/// fresh worker) resumes to the same final state as the equivalent
/// local kill/resume pair.
#[test]
fn distributed_kill_resume_matches_local_kill_resume() {
    let spec = catalog::device_a1();
    let killed_local =
        Fleet::new(quick_fleet(2, Some(1))).run(&spec, FuzzerConfig::droidfuzz);
    assert!(!killed_local.finished);
    let resumed_local = Fleet::new(quick_fleet(2, None))
        .resume(&spec, FuzzerConfig::droidfuzz, &killed_local.snapshot)
        .expect("local snapshot parses");
    assert!(resumed_local.finished);

    let (killed_hub, killed_workers) =
        run_distributed(quick_fleet(2, Some(1)), &[2], reliable(), 5, None);
    assert!(!killed_hub.finished);
    assert!(!killed_workers[0].finished, "worker must observe the kill");
    assert_eq!(killed_hub.rounds_completed, 1);
    assert_eq!(
        strip_net(&killed_hub.snapshot),
        strip_net(&killed_local.snapshot),
        "kill-point snapshots must agree"
    );

    let snap = FleetSnapshot::parse(&killed_hub.snapshot).expect("hub snapshot parses");
    let (resumed_hub, resumed_workers) =
        run_distributed(quick_fleet(2, None), &[2], reliable(), 6, Some(snap));
    assert!(resumed_hub.finished && resumed_workers[0].finished);
    assert_eq!(resumed_hub.rounds_completed, 3);
    assert_eq!(
        strip_net(&resumed_hub.snapshot),
        strip_net(&resumed_local.snapshot),
        "resumed distributed campaign diverged from the local resume"
    );
    assert_eq!(resumed_hub.union_coverage, resumed_local.union_coverage);
    assert_eq!(crash_titles(&resumed_hub.crashes), crash_titles(&resumed_local.crashes));
    // The resumed hub's baseline carries the killed run's wire totals.
    assert!(
        resumed_hub.net_totals.frames_sent > killed_hub.net_totals.frames_sent,
        "resume must absorb the killed run's net baseline"
    );
}
