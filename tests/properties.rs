//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use droidfuzz_repro::droidfuzz::analysis::{audit_corpus, lint_prog};
use droidfuzz_repro::droidfuzz::config::FuzzerConfig;
use droidfuzz_repro::droidfuzz::corpus::Corpus;
use droidfuzz_repro::droidfuzz::crashes::dedup_key;
use droidfuzz_repro::droidfuzz::engine::FuzzingEngine;
use droidfuzz_repro::droidfuzz::feedback::{signals_from_execution, SignalSet, SyscallIdTable};
use droidfuzz_repro::droidfuzz::fleet::FleetSnapshot;
use droidfuzz_repro::droidfuzz::relation::RelationGraph;
use droidfuzz_repro::fuzzlang::desc::{ArgDesc, CallDesc, CallKind, DescId, DescTable, SyscallTemplate};
use droidfuzz_repro::fuzzlang::text::{format_prog, parse_prog};
use droidfuzz_repro::fuzzlang::types::TypeDesc;
use droidfuzz_repro::simbinder::Parcel;
use droidfuzz_repro::simkernel::coverage::Block;
use droidfuzz_repro::simkernel::fd::{FdTable, OpenFileId};
use droidfuzz_repro::simkernel::syscall::SyscallNr;
use droidfuzz_repro::simkernel::trace::{Origin, SyscallEvent};
use proptest::prelude::*;
use rand::SeedableRng;

fn test_table() -> DescTable {
    let mut t = DescTable::new();
    t.add(CallDesc::syscall_open("/dev/p"));
    t.add(CallDesc::syscall_close());
    t.add(CallDesc::new(
        "ioctl$P",
        CallKind::Syscall(SyscallTemplate::Ioctl { request: 0x11 }),
        vec![
            ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/p".into() }),
            ArgDesc::new("v", TypeDesc::any_u32()),
            ArgDesc::new("blob", TypeDesc::Buffer { min_len: 0, max_len: 16 }),
        ],
        None,
    ));
    t.add(CallDesc::new(
        "hal$I$m",
        CallKind::Hal { service: "svc".into(), code: 1 },
        vec![ArgDesc::new(
            "s",
            // A choice with raw control characters exercises the text
            // layer's `\r`/`\t` escaping: the serialized form must never
            // carry them, or lint results would drift across a round-trip.
            TypeDesc::Str { choices: vec!["a\"b".into(), "".into(), "c\rd\te".into()] },
        )],
        None,
    ));
    t
}

proptest! {
    /// Parcel writes read back in order with the same values.
    #[test]
    fn parcel_roundtrip(ints in prop::collection::vec(any::<i32>(), 0..8),
                        s in "[ -~]{0,32}",
                        blob in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut p = Parcel::new();
        for &v in &ints {
            p.write_i32(v);
        }
        p.write_string16(s.clone());
        p.write_blob(blob.clone());
        let mut r = p.reader();
        for &v in &ints {
            prop_assert_eq!(r.read_i32().unwrap(), v);
        }
        prop_assert_eq!(r.read_string16().unwrap(), s.as_str());
        prop_assert_eq!(r.read_blob().unwrap(), blob.as_slice());
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Generated programs always validate, and survive a text round-trip
    /// exactly.
    #[test]
    fn generated_prog_text_roundtrip(seed in any::<u64>(), len in 1usize..12) {
        let table = test_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prog = droidfuzz_repro::fuzzlang::gen::generate(&table, len, &mut rng);
        prop_assert_eq!(prog.validate(&table), Ok(()));
        let text = format_prog(&prog, &table);
        let reparsed = parse_prog(&text, &table).unwrap();
        prop_assert_eq!(prog, reparsed);
    }

    /// The linter is invariant under a text round-trip:
    /// `lint(parse(print(p))) == lint(p)` for every generated program,
    /// including ones whose string args carry control characters.
    #[test]
    fn lint_is_invariant_under_text_roundtrip(seed in any::<u64>(), len in 1usize..12) {
        let table = test_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prog = droidfuzz_repro::fuzzlang::gen::generate(&table, len, &mut rng);
        let direct = lint_prog(&prog, &table);
        let text = format_prog(&prog, &table);
        let reparsed = parse_prog(&text, &table).unwrap();
        prop_assert_eq!(lint_prog(&reparsed, &table), direct);
    }

    /// Generator output never carries an `Error`-severity lint finding —
    /// the gate must be a no-op on the generator's own programs.
    #[test]
    fn generated_progs_are_lint_error_free(seed in any::<u64>(), len in 1usize..16) {
        let table = test_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prog = droidfuzz_repro::fuzzlang::gen::generate(&table, len, &mut rng);
        let report = lint_prog(&prog, &table);
        prop_assert_eq!(report.error_count(), 0, "unexpected errors: {:?}", report.diagnostics);
    }

    /// Every individual mutation step stays lint-error-free (warnings like
    /// double-close are expected; structural errors are not).
    #[test]
    fn mutation_steps_are_lint_error_free(seed in any::<u64>(), mutations in 1usize..40) {
        let table = test_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut prog = droidfuzz_repro::fuzzlang::gen::generate(&table, 5, &mut rng);
        for step in 0..mutations {
            droidfuzz_repro::fuzzlang::mutate::mutate(&mut prog, &table, &mut rng);
            let report = lint_prog(&prog, &table);
            prop_assert_eq!(
                report.error_count(), 0,
                "errors after mutation step {}: {:?}", step, report.diagnostics
            );
        }
    }

    /// Mutation chains never produce invalid programs.
    #[test]
    fn mutation_preserves_validity(seed in any::<u64>(), mutations in 1usize..40) {
        let table = test_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut prog = droidfuzz_repro::fuzzlang::gen::generate(&table, 5, &mut rng);
        for _ in 0..mutations {
            droidfuzz_repro::fuzzlang::mutate::mutate(&mut prog, &table, &mut rng);
            prop_assert_eq!(prog.validate(&table), Ok(()));
        }
    }

    /// Removing any call keeps the program valid.
    #[test]
    fn remove_call_preserves_validity(seed in any::<u64>(), idx in 0usize..16) {
        let table = test_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut prog = droidfuzz_repro::fuzzlang::gen::generate(&table, 8, &mut rng);
        prog.remove_call(idx.min(prog.len().saturating_sub(1)));
        prop_assert_eq!(prog.validate(&table), Ok(()));
    }

    /// Eq. 1 invariant: after any learn sequence, the in-weights of every
    /// vertex sum to at most 1 (exactly 1 for any learn target).
    #[test]
    fn relation_in_weights_bounded(edges in prop::collection::vec((0usize..6, 0usize..6), 1..40)) {
        let mut t = DescTable::new();
        for i in 0..6 {
            t.add(CallDesc::new(
                format!("c{i}"),
                CallKind::Hal { service: "s".into(), code: i as u32 },
                vec![],
                None,
            ));
        }
        let mut g = RelationGraph::new(&t);
        let mut targets = std::collections::HashSet::new();
        for (a, b) in edges {
            if a != b {
                targets.insert(b);
            }
            g.learn(DescId(a), DescId(b));
        }
        for b in 0..6 {
            let sum = g.in_weight_sum(DescId(b));
            prop_assert!(sum <= 1.0 + 1e-9, "in-weights of {b} sum to {sum}");
            if targets.contains(&b) {
                prop_assert!((sum - 1.0).abs() < 1e-9, "learn target {b} sums to {sum}");
            }
        }
    }

    /// Decay never increases weights and never breaks sampling.
    #[test]
    fn relation_decay_monotone(factor in 0.1f64..0.99, rounds in 1usize..20) {
        let mut t = DescTable::new();
        for i in 0..4 {
            t.add(CallDesc::new(
                format!("c{i}"),
                CallKind::Hal { service: "s".into(), code: i as u32 },
                vec![],
                None,
            ));
        }
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.learn(DescId(2), DescId(1));
        let before = g.in_weight_sum(DescId(1));
        for _ in 0..rounds {
            g.decay(factor);
        }
        prop_assert!(g.in_weight_sum(DescId(1)) <= before + 1e-9);
    }

    /// Fd tables allocate unique descriptors and never lose entries.
    #[test]
    fn fd_table_unique_and_consistent(ops in prop::collection::vec(any::<bool>(), 1..64)) {
        let mut table = FdTable::new();
        let mut live = std::collections::HashMap::new();
        let mut counter = 0u64;
        for install in ops {
            if install {
                counter += 1;
                if let Ok(fd) = table.install(OpenFileId(counter)) {
                    prop_assert!(live.insert(fd, counter).is_none(), "fd reused while live");
                }
            } else if let Some(&fd) = live.keys().next() {
                let expected = live.remove(&fd).unwrap();
                prop_assert_eq!(table.remove(fd).unwrap(), OpenFileId(expected));
            }
        }
        prop_assert_eq!(table.len(), live.len());
        for (&fd, &id) in &live {
            prop_assert_eq!(table.get(fd).unwrap(), OpenFileId(id));
        }
    }

    /// Signal merging is idempotent and order-insensitive in totals.
    #[test]
    fn signal_set_merge_idempotent(blocks in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut id_table = SyscallIdTable::new();
        let kcov: Vec<Block> = blocks.iter().map(|&b| Block(u64::from(b))).collect();
        let sigs = signals_from_execution(&kcov, &[], &mut id_table, true);
        let mut set = SignalSet::new();
        let first = set.merge(&sigs);
        let second = set.merge(&sigs);
        prop_assert_eq!(second, 0, "second merge adds nothing");
        let distinct: std::collections::HashSet<_> = blocks.iter().collect();
        prop_assert_eq!(first, distinct.len());
        prop_assert_eq!(set.kernel_blocks(), distinct.len());
    }

    /// Directional coverage depends on order; undirected sets do not.
    #[test]
    fn directional_signals_are_order_sensitive(reqs in prop::collection::vec(1u64..50, 2..12)) {
        let mut sorted = reqs.clone();
        sorted.sort_unstable();
        let mut reversed = sorted.clone();
        reversed.reverse();
        prop_assume!(sorted != reversed);
        let ev = |critical: u64| SyscallEvent {
            origin: Origin::Hal(1),
            nr: SyscallNr::Ioctl,
            critical,
            path: None,
            ok: true,
        };
        // One shared lookup table, pre-populated in a canonical order (as
        // the compiled table of §IV-D would be) so IDs are stable across
        // both observations.
        let mut table = SyscallIdTable::new();
        let mut canonical = sorted.clone();
        canonical.dedup();
        let pre: Vec<_> = canonical.iter().map(|&c| ev(c)).collect();
        let _ = signals_from_execution(&[], &pre, &mut table, true);
        let a: Vec<_> = sorted.iter().map(|&c| ev(c)).collect();
        let sig_a = signals_from_execution(&[], &a, &mut table, true);
        let b: Vec<_> = reversed.iter().map(|&c| ev(c)).collect();
        let sig_b = signals_from_execution(&[], &b, &mut table, true);
        prop_assert_ne!(sig_a, sig_b);
    }

    /// Crash dedup keys are stable under KASAN access-direction noise.
    #[test]
    fn dedup_key_normalizes_direction(site in "[a-z_]{1,24}") {
        let read = format!("KASAN: slab-use-after-free Read in {site}");
        let write = format!("KASAN: slab-use-after-free Write in {site}");
        let plain = format!("KASAN: slab-use-after-free in {site}");
        prop_assert_eq!(dedup_key(&read), dedup_key(&plain));
        prop_assert_eq!(dedup_key(&write), dedup_key(&plain));
    }

    /// Adversarial seed text never panics corpus import, accounting stays
    /// bounded by the header count, and whatever was accepted re-exports
    /// byte-identically (the fleet hub relies on both properties).
    #[test]
    fn corpus_import_survives_adversarial_seed_text(
        segments in prop::collection::vec((0usize..6, "[ -~]{0,40}"), 0..10),
    ) {
        let table = test_table();
        let mut text = String::new();
        for (kind, junk) in &segments {
            match kind {
                0 => text.push_str("# seed 0 signals=7\nr0 = openat$/dev/p()\n\n"),
                1 => text.push_str(&format!("# seed 1 signals={junk}\nr0 = openat$/dev/p()\n")),
                2 => text.push_str(&format!("# seed 2 signals=3\nr0 = {junk}\n")),
                3 => text.push_str(&format!("# seed {junk}\n")),
                4 => text.push_str(junk),
                _ => text.push_str("r0 = openat$/dev/p()\n"),
            }
            text.push('\n');
        }
        let mut corpus = Corpus::new();
        let (accepted, rejected) = corpus.import(&text, &table);
        prop_assert_eq!(accepted, corpus.len());
        prop_assert!(
            accepted + rejected <= text.matches("# seed ").count() + 1,
            "{accepted}+{rejected} results from {} headers", text.matches("# seed ").count()
        );
        // Round-trip: a clean re-export imports with zero rejects and
        // re-exports byte-identically.
        let exported = corpus.export(&table);
        let mut restored = Corpus::new();
        prop_assert_eq!(restored.import(&exported, &table), (accepted, 0));
        prop_assert_eq!(restored.export(&table), exported);
    }

    /// Relation graphs survive a text round-trip byte-identically after
    /// arbitrary learn/decay histories.
    #[test]
    fn relation_export_import_roundtrip_identical(
        edges in prop::collection::vec((0usize..6, 0usize..6), 0..40),
        decays in 0usize..4,
    ) {
        let mut t = DescTable::new();
        for i in 0..6 {
            t.add(CallDesc::new(
                format!("c{i}"),
                CallKind::Hal { service: "s".into(), code: i as u32 },
                vec![],
                None,
            ));
        }
        let mut g = RelationGraph::new(&t);
        for (a, b) in edges {
            g.learn(DescId(a), DescId(b));
        }
        for _ in 0..decays {
            g.decay(0.7);
        }
        let text = g.export(&t);
        let mut restored = RelationGraph::new(&t);
        let (accepted, rejected) = restored.import(&text, &t);
        prop_assert_eq!(rejected, 0, "own exports always re-import");
        prop_assert_eq!(accepted, g.edge_count());
        prop_assert_eq!(restored.export(&t), text);
    }

    /// Arbitrary text never panics relation import, and the Eq. 1 bound
    /// holds afterwards no matter what the text claimed.
    #[test]
    fn relation_import_never_breaks_eq1(text in "[ -~\t\n]{0,256}") {
        let t = test_table();
        let mut g = RelationGraph::new(&t);
        let _ = g.import(&text, &t);
        for i in 0..t.len() {
            let sum = g.in_weight_sum(DescId(i));
            prop_assert!(sum <= 1.0 + 1e-9, "in-weights of {i} sum to {sum}");
        }
    }

    /// Fleet snapshot parsing never panics on arbitrary section bodies,
    /// and re-serializing a parse is a fixed point.
    #[test]
    fn snapshot_parse_tolerates_adversarial_text(text in "[ -~\t\n]{0,300}") {
        // Headerless garbage is an error, never a panic.
        let _ = FleetSnapshot::parse(&text);
        // With a valid header, any body parses and re-serializes stably.
        let mut full = String::from("# droidfuzz-fleet-snapshot v1 round=1 clock_us=2\n");
        full.push_str(&text);
        let snap = FleetSnapshot::parse(&full).unwrap();
        let rendered = snap.to_text();
        let reparsed = FleetSnapshot::parse(&rendered).unwrap();
        prop_assert_eq!(reparsed.to_text(), rendered);
    }
}

/// Regression fixtures: corpus files under `tests/fixtures/lint/` must
/// stay free of `Error`-severity findings against the device-A1
/// vocabulary (warnings and infos are allowed — one fixture exists to
/// pin warning-only behavior). The CI lint-gate job runs `droidfuzz-lint`
/// over the same files.
#[test]
fn lint_fixtures_stay_error_free() {
    let engine = FuzzingEngine::new(
        droidfuzz_repro::simdevice::catalog::device_a1().boot(),
        FuzzerConfig::droidfuzz(1),
    );
    let table = engine.desc_table();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/lint");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("fixture dir exists") {
        let path = entry.expect("readable entry").path();
        if path.is_dir() {
            // `absint/` fixtures carry deliberate findings; `tests/absint.rs`
            // asserts their exact diagnostic codes instead.
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let report = audit_corpus(&text, table);
        assert_eq!(
            report.error_count(),
            0,
            "{}: {:?}",
            path.display(),
            report.diagnostics
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected at least two fixtures, found {checked}");
}
