//! Crash-safety integration tests for the durable store: a deterministic
//! crash-point sweep over *every byte offset* of a journal + snapshot
//! write sequence, a property sweep with random crash points and at-rest
//! corruption on top, and kill/resume round trips over both the
//! fault-injectable sim medium and the real filesystem backend.
//!
//! The invariant under test everywhere: whatever prefix of the write
//! sequence survives a crash, recovery yields a *prefix-consistent* hub
//! state — every recovered seed is one the campaign actually admitted
//! (never invented, never reordered past the crash point), and the
//! recovered snapshot passes the full analysis audit (Eq. 1 in-weight
//! invariants included).

use std::sync::OnceLock;

use droidfuzz_repro::droidfuzz::config::FuzzerConfig;
use droidfuzz_repro::droidfuzz::engine::FuzzingEngine;
use droidfuzz_repro::droidfuzz::fleet::{Fleet, FleetConfig, FleetSnapshot};
use droidfuzz_repro::droidfuzz::store::{
    FleetDelta, FsMedium, Journal, RecoveryManager, RecoveryOutcome, SimMedium, SnapshotStore,
    StorageMedium, StoreError, FLEET_SECTION,
};
use droidfuzz_repro::fuzzlang::desc::DescTable;
use droidfuzz_repro::simdevice::catalog;
use proptest::prelude::*;

fn fleet_config(kill_after_rounds: Option<usize>) -> FleetConfig {
    FleetConfig {
        shards: 2,
        hours: 0.15,
        sync_interval_hours: 0.05,
        sync: true,
        hub_capacity: 256,
        kill_after_rounds,
        flap_limit: 2,
        checkpoint_interval_rounds: 1,
        threads: 0,
    }
}

/// Extracts the program bodies of a corpus export, in order.
fn seed_bodies(corpus_text: &str) -> Vec<String> {
    let mut bodies = Vec::new();
    let mut current: Option<String> = None;
    for line in corpus_text.lines() {
        if line.starts_with("# seed ") {
            if let Some(body) = current.take() {
                bodies.push(body);
            }
            current = Some(String::new());
        } else if let Some(body) = current.as_mut() {
            if !body.is_empty() {
                body.push('\n');
            }
            body.push_str(line);
        }
    }
    if let Some(body) = current {
        bodies.push(body);
    }
    bodies
}

/// A small but real write sequence: journal-0 with three seed deltas, a
/// compaction into snapshot generation 1, then journal-1 with two more
/// seeds — the exact shape `FleetStore` produces round to round.
struct Sequence {
    medium: SimMedium,
    table: DescTable,
    /// Seed-body lists of every crash-consistent state, in write order.
    valid_states: Vec<Vec<String>>,
}

fn build_sequence() -> Sequence {
    let spec = catalog::device_e();
    let mut engine = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1));
    let table = engine.desc_table().clone();

    // Real, lint-clean programs to journal as admitted seeds (a short
    // burst of fuzzing grows the probe corpus past the 5 we need).
    engine.run_for_virtual_hours(0.05);
    let bodies = seed_bodies(&engine.export_corpus());
    assert!(bodies.len() >= 5, "corpus too small for the sweep: {}", bodies.len());

    // A real (tiny) campaign supplies an audit-clean base snapshot; its
    // corpus is cut down to three seeds to keep the byte sweep fast.
    let result = Fleet::new(FleetConfig {
        hours: 0.05,
        ..fleet_config(None)
    })
    .run(&spec, FuzzerConfig::droidfuzz);
    let mut snap = FleetSnapshot::parse(&result.snapshot).expect("campaign snapshot parses");
    let snap_bodies: Vec<String> = seed_bodies(&snap.corpus_text).into_iter().take(3).collect();
    snap.corpus_text = snap_bodies
        .iter()
        .enumerate()
        .map(|(i, b)| format!("# seed {i} signals=1\n{b}\n"))
        .collect();

    let medium = SimMedium::new();
    let mut valid_states: Vec<Vec<String>> = vec![Vec::new()];

    let mut journal0 = Journal::create(medium.clone(), 0).unwrap();
    let mut journaled: Vec<String> = Vec::new();
    for body in &bodies[..3] {
        journal0.append(&FleetDelta::Seed { signals: 1, body: body.clone() }.encode()).unwrap();
        journaled.push(body.clone());
        valid_states.push(journaled.clone());
    }
    journal0.append(&FleetDelta::Round { round: 1, clock_us: 180_000_000 }.encode()).unwrap();

    let mut snapshots = SnapshotStore::new(medium.clone(), 3);
    snapshots.write(1, &[(FLEET_SECTION, snap.to_text().as_bytes())]).unwrap();
    valid_states.push(snap_bodies.clone());

    let mut journal1 = Journal::create(medium.clone(), 1).unwrap();
    let mut journaled = snap_bodies.clone();
    for body in &bodies[3..5] {
        journal1.append(&FleetDelta::Seed { signals: 2, body: body.clone() }.encode()).unwrap();
        journaled.push(body.clone());
        valid_states.push(journaled.clone());
    }
    journal1.append(&FleetDelta::Round { round: 2, clock_us: 360_000_000 }.encode()).unwrap();

    Sequence { medium, table, valid_states }
}

fn sequence() -> &'static Sequence {
    static SEQ: OnceLock<Sequence> = OnceLock::new();
    SEQ.get_or_init(build_sequence)
}

/// Recovery after a crash must yield exactly one of the crash-consistent
/// seed lists — a prefix of what was durably written, never more.
fn assert_prefix_consistent(crashed: SimMedium, seq: &Sequence, context: &str) {
    let recovered = match RecoveryManager::new(crashed).recover_verified(&seq.table) {
        Ok(recovered) => recovered,
        Err(StoreError::NotFound(_)) => return, // nothing durable yet
        Err(e) => panic!("{context}: recovery failed hard: {e}"),
    };
    assert_ne!(
        recovered.report.outcome,
        RecoveryOutcome::Unrecoverable,
        "{context}: unrecoverable"
    );
    let got = seed_bodies(&recovered.snapshot.corpus_text);
    assert!(
        seq.valid_states.contains(&got),
        "{context}: recovered {} seed(s) matching no crash-consistent prefix (outcome {})",
        got.len(),
        recovered.report.outcome,
    );
}

/// The tentpole sweep: simulate a host crash after *every* byte of the
/// journal + snapshot write sequence and require prefix-consistent,
/// audit-clean recovery at each offset.
#[test]
fn crash_at_every_byte_offset_recovers_prefix_consistent_state() {
    let seq = sequence();
    let total = seq.medium.total_units();
    assert!(total > 500, "sequence suspiciously small: {total} units");
    for units in 0..=total {
        assert_prefix_consistent(seq.medium.crash_at(units), seq, &format!("crash at {units}"));
    }
}

proptest! {
    /// Random crash points with a random bit flipped somewhere in the
    /// surviving files: recovery may fall back a generation or truncate
    /// a tail, but must stay prefix-consistent and never invent state.
    #[test]
    fn random_crash_plus_bit_flip_stays_prefix_consistent(
        units_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        mask in any::<u8>(),
    ) {
        let mask = mask | 1; // a zero mask would flip nothing
        let seq = sequence();
        let total = seq.medium.total_units();
        let crashed = seq.medium.crash_at(units_seed % (total + 1));
        let files = crashed.list().unwrap();
        if !files.is_empty() {
            let name = files[flip_seed as usize % files.len()].clone();
            let len = crashed.read(&name).map(|b| b.len()).unwrap_or(0);
            if len > 0 {
                crashed.corrupt(&name, (flip_seed >> 8) as usize % len, mask);
            }
        }
        assert_prefix_consistent(crashed, seq, "random crash + flip");
    }
}

/// A durable campaign killed mid-run resumes from the real filesystem
/// with zero lost crash records and continues to the full horizon.
#[test]
fn killed_campaign_resumes_losslessly_from_the_filesystem() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("droidfuzz-store-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = catalog::device_e();
    let medium = FsMedium::new(&dir).unwrap();

    let killed = Fleet::new(fleet_config(Some(2)))
        .run_durable(&spec, FuzzerConfig::droidfuzz, medium.clone())
        .unwrap();
    assert_eq!(killed.rounds_completed, 2);
    assert!(killed.store_totals.snapshots_written >= 1);

    let (resumed, report) = Fleet::new(fleet_config(None))
        .resume_durable(&spec, FuzzerConfig::droidfuzz, medium)
        .unwrap();
    assert_eq!(report.outcome, RecoveryOutcome::Clean);
    assert_eq!(resumed.rounds_completed, 3);
    assert!(resumed.union_coverage >= killed.union_coverage);
    for crash in &killed.crashes {
        assert!(
            resumed.crashes.iter().any(|c| c.title == crash.title),
            "crash lost across kill/resume: {}",
            crash.title
        );
    }
    // The unkilled reference run finds the same crash set.
    let reference = Fleet::new(fleet_config(None)).run(&spec, FuzzerConfig::droidfuzz);
    assert_eq!(reference.rounds_completed, resumed.rounds_completed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill/resume under parallelism: a durable campaign killed mid-run on a
/// multi-worker fleet leaves byte-identical store state to the
/// single-worker run, and resuming with a *different* worker count picks
/// up from it to the same final state — durability and the worker pool
/// compose without either observing the other.
#[test]
fn parallel_kill_resume_matches_sequential_durable_run() {
    let spec = catalog::device_e();
    let config = |threads: usize, kill| FleetConfig { threads, ..fleet_config(kill) };

    // Phase 1: the same campaign killed at round 2, once sequentially and
    // once on 4 workers, onto separate media. The media must end byte-
    // identical: same snapshot generations, same journal records.
    let medium_seq = SimMedium::new();
    let medium_par = SimMedium::new();
    let killed_seq = Fleet::new(config(1, Some(2)))
        .run_durable(&spec, FuzzerConfig::droidfuzz, medium_seq.clone())
        .unwrap();
    let killed_par = Fleet::new(config(4, Some(2)))
        .run_durable(&spec, FuzzerConfig::droidfuzz, medium_par.clone())
        .unwrap();
    assert_eq!(killed_seq.rounds_completed, 2);
    assert_eq!(killed_seq.snapshot, killed_par.snapshot, "kill-point snapshots diverged");
    let names_seq = medium_seq.list().unwrap();
    let names_par = medium_par.list().unwrap();
    assert_eq!(names_seq, names_par, "store object lists diverged");
    for name in &names_seq {
        assert_eq!(
            medium_seq.read(name).unwrap(),
            medium_par.read(name).unwrap(),
            "store object {name} diverged between thread counts"
        );
    }

    // Phase 2: resume the parallel medium sequentially and the sequential
    // medium on 4 workers — crossing thread counts over the kill point
    // must still converge on the same completed campaign.
    let (resumed_a, report_a) = Fleet::new(config(1, None))
        .resume_durable(&spec, FuzzerConfig::droidfuzz, medium_par)
        .unwrap();
    let (resumed_b, report_b) = Fleet::new(config(4, None))
        .resume_durable(&spec, FuzzerConfig::droidfuzz, medium_seq)
        .unwrap();
    assert_eq!(report_a.outcome, RecoveryOutcome::Clean);
    assert_eq!(report_b.outcome, RecoveryOutcome::Clean);
    assert_eq!(resumed_a.rounds_completed, 3);
    assert_eq!(resumed_a.snapshot, resumed_b.snapshot, "post-resume snapshots diverged");
    assert_eq!(
        resumed_a.crashes.iter().map(|c| &c.title).collect::<Vec<_>>(),
        resumed_b.crashes.iter().map(|c| &c.title).collect::<Vec<_>>()
    );
}

/// The same zero-loss property under an actively hostile medium: torn
/// journal appends and bit-flipped snapshot writes degrade the store
/// (io-error counters, generation fallback) but never kill the campaign
/// or corrupt the resumed state.
#[test]
fn hostile_medium_degrades_but_never_corrupts() {
    use droidfuzz_repro::droidfuzz::store::MediumFault;
    let spec = catalog::device_e();
    let medium = SimMedium::with_plan(vec![
        MediumFault::TornWrite { op: 40, keep: 11 },
        MediumFault::BitFlip { op: 90, offset: 5, mask: 0x10 },
        MediumFault::NoSpace { after_bytes: 400_000 },
    ]);
    let killed = Fleet::new(fleet_config(Some(2)))
        .run_durable(&spec, FuzzerConfig::droidfuzz, medium.clone())
        .unwrap();
    assert_eq!(killed.rounds_completed, 2, "campaign must survive storage faults");

    let engine = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(0));
    match RecoveryManager::new(medium.clone()).recover_verified(engine.desc_table()) {
        Ok(recovered) => {
            // Whatever survived must replay into an audit-clean state —
            // recover_verified already gates on the analysis auditors.
            assert_ne!(recovered.report.outcome, RecoveryOutcome::Unrecoverable);
            let (resumed, _) = Fleet::new(fleet_config(None))
                .resume_durable(&spec, FuzzerConfig::droidfuzz, medium)
                .unwrap();
            assert_eq!(resumed.rounds_completed, 3);
        }
        Err(StoreError::NotFound(_)) | Err(StoreError::Unrecoverable(_)) => {
            // Acceptable only if the faults destroyed every generation;
            // the campaign itself still ran to its kill point above.
        }
        Err(e) => panic!("unexpected recovery error: {e}"),
    }
}
